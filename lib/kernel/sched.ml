open Mpk_hw

type ipi_stats = { mutable sent : int; mutable received : int }

type t = {
  machine : Machine.t;
  mutable tasks : Task.t list;
  mutable next_id : int;
  ipi : (int, ipi_stats) Hashtbl.t;  (* core id -> IPIs sent/received *)
  mutable preempting : bool;  (* reentrancy guard for [preempt] *)
}

let create machine =
  { machine; tasks = []; next_id = 0; ipi = Hashtbl.create 8; preempting = false }

let machine t = t.machine

let ipi_stats_for t core_id =
  match Hashtbl.find_opt t.ipi core_id with
  | Some s -> s
  | None ->
      let s = { sent = 0; received = 0 } in
      Hashtbl.add t.ipi core_id s;
      s

let note_ipi t ~sender_id ~target_id =
  let s = ipi_stats_for t sender_id in
  s.sent <- s.sent + 1;
  let r = ipi_stats_for t target_id in
  r.received <- r.received + 1

let ipis_sent t = Hashtbl.fold (fun _ s acc -> acc + s.sent) t.ipi 0

let ipis_per_core t =
  Hashtbl.fold (fun id s acc -> (id, s.sent, s.received) :: acc) t.ipi []
  |> List.sort compare

let return_to_user task = Task.work_run task

let schedule_in _t task =
  match Task.state task with
  | Task.On_cpu -> ()
  | Task.Off_cpu ->
      let core = Task.core task in
      Cpu.charge ~label:"context_switch" core (Cpu.costs core).context_switch;
      Cpu.set_pkru_direct core (Task.saved_pkru task);
      Task.set_state task On_cpu;
      (* Deferred TLB shootdown: a lazy shootdown aimed at this task while
         it was off-CPU marked it instead of sending an IPI; the flush is
         paid for here, where the eager path would have charged the
         target. *)
      if Task.tlb_flush_pending task then begin
        Cpu.charge ~label:"tlb_flush_deferred" core (Cpu.costs core).tlb_flush_all;
        Tlb.flush_all (Cpu.tlb core);
        Task.clear_tlb_flush task;
        if Mpk_trace.Tracer.on () then
          Cpu.emit core (Mpk_trace.Event.Tlb_flush { pages = 0; all = true })
      end;
      (* Keep the tracer's core→task registry current even while tracing
         is off, so enabling mid-run stamps events correctly. *)
      Mpk_trace.Tracer.set_task_on_core ~core:(Cpu.id core) ~task:(Task.id task);
      if Mpk_trace.Tracer.on () then
        Cpu.emit core (Mpk_trace.Event.Context_switch { task = Task.id task; onto = true });
      return_to_user task

let schedule_out _t task =
  match Task.state task with
  | Task.Off_cpu -> ()
  | Task.On_cpu ->
      let core = Task.core task in
      Cpu.charge ~label:"context_switch" core (Cpu.costs core).context_switch;
      Task.set_saved_pkru task (Cpu.pkru core);
      Task.set_state task Off_cpu;
      if Mpk_trace.Tracer.on () then
        Cpu.emit core (Mpk_trace.Event.Context_switch { task = Task.id task; onto = false });
      Mpk_trace.Tracer.set_task_on_core ~core:(Cpu.id core) ~task:(-1)

let spawn t ~core_id =
  let core = Machine.core t.machine core_id in
  let task = Task.create ~id:t.next_id ~core () in
  t.next_id <- t.next_id + 1;
  t.tasks <- t.tasks @ [ task ];
  schedule_in t task;
  task

let tasks t = t.tasks

let task_on t ~core_id =
  List.find_opt
    (fun task -> Task.state task = Task.On_cpu && Cpu.id (Task.core task) = core_id)
    t.tasks

(* Forced preemption (fault injection): bounce the on-CPU task through a
   schedule_out/schedule_in pair. Context switches themselves charge
   cycles — and charged events are where forced preemption fires — so a
   reentrancy guard keeps the bounce from recursing. The guard is
   per-scheduler: a nested simulated machine (stress runs, torture
   harnesses) preempting must not suppress preemption on this one. *)
let preempt t ~core_id =
  if not t.preempting then
    match task_on t ~core_id with
    | None -> ()
    | Some task ->
        t.preempting <- true;
        Fun.protect
          ~finally:(fun () -> t.preempting <- false)
          (fun () ->
            schedule_out t task;
            schedule_in t task)

let kick t ~from target =
  match Task.state target with
  | Task.Off_cpu -> ()
      (* lazy: no IPI is sent at all — the queued work runs at the
         target's next [schedule_in], so neither side pays anything here *)
  | Task.On_cpu ->
      let sender = Task.core from in
      let core = Task.core target in
      Cpu.charge ~label:"ipi_send" sender (Cpu.costs sender).ipi_send;
      note_ipi t ~sender_id:(Cpu.id sender) ~target_id:(Cpu.id core);
      if Mpk_trace.Tracer.on () then
        Cpu.emit sender (Mpk_trace.Event.Ipi { kind = "resched_kick"; target_core = Cpu.id core });
      Cpu.charge ~label:"ipi_receive" core (Cpu.costs core).ipi_receive;
      return_to_user target

type batch = { cores_kicked : int; tasks_reached : int }

let kick_batch t ~from ?(kind = "pkey_sync_batch") ?(flush_tlb = false) ?(sync = false) targets =
  let sender = Task.core from in
  let costs = Cpu.costs sender in
  (* Off-CPU targets never see an IPI: their queued work runs at the next
     [schedule_in], which (for shootdown batches) also performs the
     deferred flush. An idle core's stale entries are dropped immediately
     — nothing can touch them before the flush we just scheduled — so the
     audited TLB state matches the eager path throughout. *)
  if flush_tlb then
    List.iter
      (fun tk ->
        if Task.state tk = Task.Off_cpu then begin
          Task.mark_tlb_flush tk;
          match task_on t ~core_id:(Cpu.id (Task.core tk)) with
          | Some _ -> ()
          | None -> Tlb.flush_all (Cpu.tlb (Task.core tk))
        end)
      targets;
  (* One IPI per distinct core holding at least one on-CPU target: every
     pending update queued on every task of that core drains under a
     single interrupt. *)
  let by_core = Hashtbl.create 8 in
  List.iter
    (fun tk ->
      if Task.state tk = Task.On_cpu then begin
        let id = Cpu.id (Task.core tk) in
        let prev = Option.value (Hashtbl.find_opt by_core id) ~default:[] in
        Hashtbl.replace by_core id (tk :: prev)
      end)
    targets;
  let core_ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) by_core [] |> List.sort compare
  in
  let reached = ref 0 in
  List.iter
    (fun id ->
      let core_tasks = List.rev (Hashtbl.find by_core id) in
      let core = Task.core (List.hd core_tasks) in
      Cpu.charge ~label:"ipi_send" sender costs.ipi_send;
      note_ipi t ~sender_id:(Cpu.id sender) ~target_id:id;
      if Mpk_trace.Tracer.on () then
        Cpu.emit sender (Mpk_trace.Event.Ipi { kind; target_core = id });
      Cpu.charge ~label:"ipi_receive" core (Cpu.costs core).ipi_receive;
      if flush_tlb then begin
        Tlb.flush_all (Cpu.tlb core);
        if Mpk_trace.Tracer.on () then
          Cpu.emit core (Mpk_trace.Event.Tlb_flush { pages = 0; all = true })
      end;
      List.iter
        (fun tk ->
          incr reached;
          return_to_user tk)
        core_tasks)
    core_ids;
  (* A synchronous batch spin-waits for the acks; the sends overlap, so
     the initiator pays a single receive-latency wait regardless of
     fan-out. *)
  if sync && core_ids <> [] then Cpu.charge ~label:"ipi_spin" sender costs.ipi_receive;
  { cores_kicked = List.length core_ids; tasks_reached = !reached }

let shootdown t ~from target =
  match Task.state target with
  | Task.Off_cpu ->
      (* Lazy shootdown: no IPI. The task is marked so its next
         [schedule_in] charges for and performs the flush; if its core is
         idle the stale entries are dropped now for free (nothing can use
         them first), matching the eager path's visible TLB state. *)
      Task.mark_tlb_flush target;
      (match task_on t ~core_id:(Cpu.id (Task.core target)) with
      | Some _ -> ()
      | None -> Tlb.flush_all (Cpu.tlb (Task.core target)))
  | Task.On_cpu ->
      let sender = Task.core from in
      let costs = Cpu.costs sender in
      (* The initiator spin-waits for the acknowledgement. *)
      Cpu.charge ~label:"ipi_send" sender (costs.ipi_send +. costs.ipi_receive);
      let core = Task.core target in
      note_ipi t ~sender_id:(Cpu.id sender) ~target_id:(Cpu.id core);
      if Mpk_trace.Tracer.on () then
        Cpu.emit sender
          (Mpk_trace.Event.Ipi { kind = "tlb_shootdown"; target_core = Cpu.id core });
      Cpu.charge ~label:"ipi_receive" core (Cpu.costs core).ipi_receive;
      Tlb.flush_all (Cpu.tlb core);
      if Mpk_trace.Tracer.on () then
        Cpu.emit core (Mpk_trace.Event.Tlb_flush { pages = 0; all = true })
