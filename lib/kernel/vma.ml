open Mpk_hw

module IntMap = Map.Make (Int)

type attrs = { prot : Perm.t; pkey : Pkey.t }

(* A vma is now an identity-bearing mutable record, because the
   concurrency protocol (DESIGN.md §13) is about *object* lifetime:
   readers may hold a reference to a vma after it has been unmapped and
   its storage handed to another mapping. [vm_mm] names the owning
   address space (-1 only before first use), [detached] marks removal
   from the tree, [gen] counts slab recycles (diagnostics only — the
   lookup protocol never needs it), and [vlock]'s shared side is the
   vm_refcnt readers hold across their critical section. *)
type vma = {
  mutable start : int;
  mutable pages : int;
  mutable attrs : attrs;
  mutable vm_mm : int;
  mutable gen : int;
  mutable detached : bool;
  vlock : Lock.t;
}

type t = {
  mm_id : int;
  mutable areas : vma IntMap.t;
  mm_lock : Lock.t;
}

let attrs_equal a b = Perm.equal a.prot b.prot && Pkey.equal a.pkey b.pkey

(* --- address-space identity (mmgrab/mmdrop model) --- *)

let next_mm_id = ref 0
let mm_grab_counts : (int, int ref) Hashtbl.t = Hashtbl.create 16

let grab_cell mm_id =
  match Hashtbl.find_opt mm_grab_counts mm_id with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.replace mm_grab_counts mm_id c;
      c

let mm_grab mm_id = if mm_id >= 0 then incr (grab_cell mm_id)
let mm_drop mm_id = if mm_id >= 0 then decr (grab_cell mm_id)

let grabs_outstanding () =
  Hashtbl.fold (fun _ c acc -> acc + !c) mm_grab_counts 0

let create () =
  incr next_mm_id;
  ignore (grab_cell !next_mm_id);
  { mm_id = !next_mm_id; areas = IntMap.empty; mm_lock = Lock.make ~cls:"mm_lock" }

let mm_id t = t.mm_id
let mm_lock t = t.mm_lock

(* --- typesafe slab (SLAB_TYPESAFE_BY_RCU model) --- *)

(* Freed vmas go to a process-global free-list and are handed out again
   — possibly to a different mm — without any quarantine. The records
   are therefore always valid OCaml memory (stale readers cannot crash
   the runtime), but their *contents* can belong to someone else by the
   time a racing reader looks: exactly the situation the lookup
   protocol's recycle check exists to detect. *)
let slab : vma list ref = ref []
let recycle_count = ref 0

let slab_free () = List.length !slab
let slab_recycled () = !recycle_count

(* Empty the free-list (records pinned by abandoned readers included:
   dropping them leaks nothing the GC can't reclaim). Harness drivers
   call this before a run so its behaviour is a pure function of its
   inputs rather than of whatever earlier runs left on the slab. *)
let slab_reset () = slab := []

let alloc_vma t ~start ~pages ~attrs =
  (* A slab entry still pinned by a stale reader is skipped, not
     reused: vm_refcnt must be zero before the slot can be handed out
     (the reader's pending put still runs against the old contents). *)
  let rec take acc = function
    | [] ->
        slab := List.rev acc;
        None
    | v :: rest when Lock.reader_count v.vlock = 0 && not (Lock.write_locked v.vlock)
      ->
        slab := List.rev_append acc rest;
        Some v
    | v :: rest -> take (v :: acc) rest
  in
  match take [] !slab with
  | Some v ->
      incr recycle_count;
      v.gen <- v.gen + 1;
      v.start <- start;
      v.pages <- pages;
      v.attrs <- attrs;
      v.vm_mm <- t.mm_id;
      v.detached <- false;
      v
  | None ->
      {
        start;
        pages;
        attrs;
        vm_mm = t.mm_id;
        gen = 0;
        detached = false;
        vlock = Lock.make ~cls:"vma_lock";
      }

(* Push to the slab. [vm_mm] is deliberately left stale — as with
   SLAB_TYPESAFE_BY_RCU, freeing scrubs nothing; only the next
   allocation overwrites. *)
let free_vma v = slab := v :: !slab

let free_detached vmas = List.iter free_vma vmas

(* --- tree queries (walk-only; see the locking notes in the mli) --- *)

let count t = IntMap.cardinal t.areas

let to_list t = IntMap.fold (fun _ v acc -> v :: acc) t.areas [] |> List.rev

let vend v = v.start + v.pages

(* Last area starting at or before [vpn]. *)
let floor_area t vpn =
  match IntMap.find_last_opt (fun s -> s <= vpn) t.areas with
  | Some (_, v) -> Some v
  | None -> None

let find t vpn =
  match floor_area t vpn with
  | Some v when vpn < vend v -> Some v
  | Some _ | None -> None

let overlapping t ~start ~pages =
  let stop = start + pages in
  let seq = IntMap.to_seq t.areas in
  Seq.filter_map
    (fun (_, v) -> if v.start < stop && vend v > start then Some v else None)
    seq
  |> List.of_seq

let covered t ~start ~pages =
  let rec check vpn =
    if vpn >= start + pages then true
    else
      match find t vpn with
      | None -> false
      | Some v -> check (vend v)
  in
  pages > 0 && check start

(* --- recycling-safe lookup protocol (SNIPPETS.md §2) --- *)

let recycle_check = ref true
let set_recycle_check b = recycle_check := b
let recycle_check_enabled () = !recycle_check

let start_read v ~actor = Lock.try_acquire v.vlock Lock.Shared ~actor

let read_valid t v vpn =
  v.vm_mm = t.mm_id && (not v.detached) && v.start <= vpn && vpn < vend v

let validate_read t v vpn = if !recycle_check then read_valid t v vpn else true

let end_read t v ~actor =
  let owner = v.vm_mm in
  if owner <> t.mm_id then begin
    (* The vma was recycled into another address space while we held
       the reference. Dropping the last refcount wakes that owner's
       writer, so the owner must be pinned (mmgrab) across the put —
       dereferencing it unpinned is the use-after-free this dance
       prevents in Linux's vma_refcount_put(). *)
    mm_grab owner;
    Lock.release v.vlock Lock.Shared ~actor;
    mm_drop owner
  end
  else Lock.release v.vlock Lock.Shared ~actor

(* --- write side (callers hold the mm lock exclusively in concurrent
   settings; every structural change write-locks the vmas it touches,
   which waits out any reader that won the refcount race) --- *)

let insert t v = t.areas <- IntMap.add v.start v t.areas

(* Unlink from the tree. Acquiring the vma write lock drains readers;
   after [detached] is set, any reader that raced the unlink fails
   validation and retries under the mm lock. The record is NOT freed:
   callers still need its fields (e.g. to free frames) and push it to
   the slab afterwards via [free_detached]. *)
let detach t ~actor v =
  Lock.acquire v.vlock Lock.Exclusive ~actor;
  t.areas <- IntMap.remove v.start t.areas;
  v.detached <- true;
  Lock.release v.vlock Lock.Exclusive ~actor

let detach_free t ~actor v =
  detach t ~actor v;
  free_vma v

let add ?(actor = -1) t ~start ~pages attrs =
  if pages <= 0 then invalid_arg "Vma.add: pages must be positive";
  (match overlapping t ~start ~pages with
  | [] -> ()
  | _ -> invalid_arg "Vma.add: overlaps an existing area");
  (* Merge with adjacent equal-attribute neighbours, as Linux does for
     compatible anonymous mappings. Mergeable neighbours are detached
     first (draining their readers), then a single area is grown or
     inserted — so no two vma locks are ever held at once and the
     class-level lock order stays flat. *)
  let stop = start + pages in
  let right_extra =
    match IntMap.find_opt stop t.areas with
    | Some right when attrs_equal right.attrs attrs ->
        let extra = right.pages in
        detach_free t ~actor right;
        extra
    | Some _ | None -> 0
  in
  match find t (start - 1) with
  | Some left when vend left = start && attrs_equal left.attrs attrs ->
      Lock.acquire left.vlock Lock.Exclusive ~actor;
      left.pages <- left.pages + pages + right_extra;
      Lock.release left.vlock Lock.Exclusive ~actor
  | Some _ | None ->
      insert t (alloc_vma t ~start ~pages:(pages + right_extra) ~attrs)

(* Split [v] so that [vpn] starts a new area; returns false if [vpn] is
   already a boundary. The left part keeps the record (its tree key is
   unchanged); the right part is a fresh allocation. *)
let split_at ?(actor = -1) t vpn =
  match find t vpn with
  | Some v when v.start < vpn ->
      Lock.acquire v.vlock Lock.Exclusive ~actor;
      let right = alloc_vma t ~start:vpn ~pages:(vend v - vpn) ~attrs:v.attrs in
      v.pages <- vpn - v.start;
      Lock.release v.vlock Lock.Exclusive ~actor;
      insert t right;
      true
  | Some _ | None -> false

let remove_range ?(actor = -1) t ~start ~pages =
  if pages <= 0 then invalid_arg "Vma.remove_range: pages must be positive";
  let stop = start + pages in
  ignore (split_at ~actor t start);
  ignore (split_at ~actor t stop);
  let doomed = overlapping t ~start ~pages in
  List.iter (detach t ~actor) doomed;
  doomed

let merge_neighbours ?(actor = -1) t vpn =
  (* Try to merge the area containing [vpn] with its left neighbour. *)
  match find t vpn with
  | None -> false
  | Some v -> (
      match find t (v.start - 1) with
      | Some left when vend left = v.start && attrs_equal left.attrs v.attrs ->
          let extra = v.pages in
          detach_free t ~actor v;
          Lock.acquire left.vlock Lock.Exclusive ~actor;
          left.pages <- left.pages + extra;
          Lock.release left.vlock Lock.Exclusive ~actor;
          true
      | Some _ | None -> false)

let set_attrs ?(actor = -1) t ~start ~pages f =
  if pages <= 0 then invalid_arg "Vma.set_attrs: pages must be positive";
  if not (covered t ~start ~pages) then
    invalid_arg "Vma.set_attrs: range not fully covered";
  let stop = start + pages in
  let splits = ref 0 in
  if split_at ~actor t start then incr splits;
  if split_at ~actor t stop then incr splits;
  let targets = overlapping t ~start ~pages in
  List.iter
    (fun v ->
      Lock.acquire v.vlock Lock.Exclusive ~actor;
      v.attrs <- f v.attrs;
      Lock.release v.vlock Lock.Exclusive ~actor)
    targets;
  let touched = List.length targets in
  let merges = ref 0 in
  (* Merge across the whole affected neighbourhood, including both edges. *)
  List.iter
    (fun vpn -> if merge_neighbours ~actor t vpn then incr merges)
    (start :: List.map (fun v -> v.start) targets @ [ stop ]);
  touched, !splits, !merges

let invariant t =
  let ok = ref true in
  let prev = ref None in
  IntMap.iter
    (fun start v ->
      if start <> v.start || v.pages <= 0 then ok := false;
      if v.vm_mm <> t.mm_id || v.detached then ok := false;
      (match !prev with
      | Some p ->
          if vend p > v.start then ok := false;
          if vend p = v.start && attrs_equal p.attrs v.attrs then ok := false
      | None -> ());
      prev := Some v)
    t.areas;
  !ok
