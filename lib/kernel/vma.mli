(** Virtual memory areas: a sorted, non-overlapping interval map keyed by
    virtual page number, with the split/merge behaviour of Linux's VMA
    tree — plus the per-VMA locking and recycling protocol that makes
    lookups safe against concurrent unmap/remap (DESIGN.md §13).

    {b Locking model.} The immutable interval map plays the role of the
    RCU-protected tree: a reader walks whatever snapshot it loaded, and
    writers publish new snapshots atomically. Each vma carries a
    reader/writer lock whose shared side is [vm_refcnt]; structural
    changes write-lock the vmas they touch (draining readers), and every
    [t] has an mm-wide lock that writers hold exclusively and readers
    fall back to when the lock-free path fails. Freed vmas go to a
    process-global typesafe free-list and may be handed out again — to
    any address space — while stale readers still hold references, so a
    reader that wins the refcount race must re-validate identity
    ([vm_mm]), liveness ([detached]) and range before trusting the
    record.

    Walk-only queries ([find]/[overlapping]/[covered]/[to_list]) take no
    locks themselves: call them under the mm lock (writers, slow-path
    readers, quiescent audits) or as step one of the
    [start_read]/[validate_read]/[end_read] protocol. *)

open Mpk_hw

type attrs = { prot : Perm.t; pkey : Pkey.t }

type vma = {
  mutable start : int;  (** vpn; the area covers [start, start + pages) *)
  mutable pages : int;
  mutable attrs : attrs;
  mutable vm_mm : int;  (** owning address-space id; stale after free *)
  mutable gen : int;  (** slab recycle count (diagnostics) *)
  mutable detached : bool;  (** unlinked from the tree *)
  vlock : Lock.t;  (** per-VMA lock; shared holds = [vm_refcnt] *)
}

type t

val create : unit -> t

val mm_id : t -> int
val mm_lock : t -> Lock.t

val count : t -> int
val to_list : t -> vma list
val vend : vma -> int

(** [add t ~start ~pages attrs] inserts a fresh area. Raises
    [Invalid_argument] if it overlaps an existing one. *)
val add : ?actor:int -> t -> start:int -> pages:int -> attrs -> unit

(** [find t vpn] is the area containing [vpn], if any (walk-only). *)
val find : t -> int -> vma option

(** [overlapping t ~start ~pages] — areas intersecting the range,
    ascending. *)
val overlapping : t -> start:int -> pages:int -> vma list

(** [covered t ~start ~pages] — true when every page of the range belongs
    to some area. *)
val covered : t -> start:int -> pages:int -> bool

(** [remove_range t ~start ~pages] unmaps a range, splitting areas that
    straddle its edges. Returns the removed (sub)areas {e detached but
    not yet freed}: their fields stay valid until the caller hands them
    to {!free_detached}. *)
val remove_range : ?actor:int -> t -> start:int -> pages:int -> vma list

(** Push detached vmas onto the typesafe free-list, after which their
    storage may be recycled by any later allocation. *)
val free_detached : vma list -> unit

(** [set_attrs t ~start ~pages f] rewrites attributes over the range,
    splitting boundary areas as needed and merging equal neighbours
    afterwards. Returns [(vmas_touched, splits, merges)] for cost
    accounting. The range must be fully covered. *)
val set_attrs :
  ?actor:int -> t -> start:int -> pages:int -> (attrs -> attrs) -> int * int * int

(** {2 Recycling-safe lookup protocol}

    The fast path of a lookup is: [find] (RCU walk) → {!start_read}
    (refcount bump) → {!validate_read} (recycle check) → use the vma →
    {!end_read}. Any failure means "fall back to the mm read lock and
    walk again". *)

(** Try to take the vma's read lock ([vma_start_read]); false when a
    writer holds it. *)
val start_read : vma -> actor:int -> bool

(** After a successful {!start_read}: true iff the vma still belongs to
    [t], is still attached, and still covers [vpn]. With the recycle
    check disabled (torture's [--plant recycle]) this is always true —
    which is the planted bug. *)
val validate_read : t -> vma -> int -> bool

(** The underlying predicate of {!validate_read}, unaffected by
    {!set_recycle_check} — the torture oracle uses it to detect what the
    planted protocol misses. *)
val read_valid : t -> vma -> int -> bool

(** Drop the read reference. If the vma has been recycled into another
    address space, the drop pins that owner (mmgrab/mmdrop) around the
    refcount put, never dereferencing a recycled owner unpinned. *)
val end_read : t -> vma -> actor:int -> unit

val set_recycle_check : bool -> unit
val recycle_check_enabled : unit -> bool

(** {2 Slab and identity diagnostics} *)

val slab_free : unit -> int
(** Entries currently on the free-list. *)

val slab_recycled : unit -> int
(** Allocations served by reuse since process start (monotonic). *)

val slab_reset : unit -> unit
(** Empty the free-list. Harness drivers (stress, torture) call this
    before a run so its behaviour depends only on its own inputs, not
    on records earlier runs freed — which is what makes a failure
    replayable from [(seed, schedule)] in a fresh process. *)

val grabs_outstanding : unit -> int
(** Unbalanced mmgrab counts across all address spaces; 0 at
    quiescence. *)

(** Internal-consistency check: sorted, non-overlapping, positive length,
    no two mergeable neighbours, every node owned by [t] and attached. *)
val invariant : t -> bool
