(** An address space: VMA tree + page table + frame management, with cycle
    charging that mirrors where Linux's [mprotect] spends time (per-VMA
    lookup/split/merge, per-PTE rewrites, TLB invalidation).

    All functions charge the given core. Kernel entry/exit is *not*
    charged here — that belongs to the syscall layer. TLB shootdown of
    other cores likewise lives in the process layer.

    Concurrency (DESIGN.md §13): every mutating entry point
    ([mmap]/[munmap]/[mmap_frames] and the [change_*] family) holds the
    address space's mm lock exclusively for the duration of the VMA and
    PTE rewrite — which gives the [Syscall]/[Libmpk] paths
    ([mpk_mmap], [mpk_munmap], [mpk_mprotect_many], [pkey_unmap_group])
    write locking at one-operation granularity without further
    plumbing. Lookups ([find_vma_read], used by the fault handler) take
    the lock-free per-VMA path with an mm-read-lock fallback. Lock
    acquisitions charge zero cycles but are preemption points. *)

open Mpk_hw

type t

val create : Physmem.t -> t

val mmu : t -> Mmu.t
val vmas : t -> Vma.t
val page_table : t -> Page_table.t

(** Pages spanned by [len] bytes. *)
val pages_of_len : int -> int

(** [find_vma_read t cpu ~vpn f] — the recycling-safe VMA lookup
    (DESIGN.md §13): lock-free walk → [vma_start_read] → recycle
    re-validation, falling back to a walk under the mm read lock when
    any step loses a race with a writer. [f] runs with the vma
    read-held (so a concurrent unmap waits for it) and its result is
    returned; [None] means no mapping covers [vpn]. [cpu] provides
    charging/preemption context and the lock actor; [None] (kernel
    walks without a core) acts as actor -1 and charges nothing. This is
    the path the demand-paging fault handler takes. *)
val find_vma_read : t -> Cpu.t option -> vpn:int -> (Vma.vma -> 'a) -> 'a option

(** [mmap t cpu ?at ~len ~prot ()] maps [len] bytes (rounded up to pages)
    of zeroed anonymous memory with the default protection key, returning
    the base address. Mapping is *lazy*: frames and PTEs materialize on
    first touch via the demand-paging fault handler, as in Linux — which
    is why [change_protection] is cheap on untouched ranges and expensive
    on populated ones. Without [at], addresses come from a bump allocator
    that leaves a one-page guard gap so distinct calls yield distinct
    VMAs (the paper's "sparse" construction). Raises [Errno.Error]. *)
val mmap : t -> Cpu.t -> ?at:int -> len:int -> prot:Perm.t -> unit -> int

(** [populate t cpu ~addr ~len] pre-faults a range (like touching every
    page), charging one page fault per absent page. *)
val populate : t -> Cpu.t -> addr:int -> len:int -> unit

(** [frames_of_range t cpu ~addr ~len] — the physical frames backing a
    range, populating it first. Hand these to another address space's
    [mmap_frames] to establish shared memory. *)
val frames_of_range : t -> Cpu.t -> addr:int -> len:int -> Physmem.frame array

(** [mmap_frames t cpu ?at ~frames ~prot ()] — map existing physical
    frames (a shared mapping, as mmap(MAP_SHARED) over the same object
    gives two processes). The frames' reference counts are bumped;
    munmap drops them. *)
val mmap_frames :
  t -> Cpu.t -> ?at:int -> frames:Physmem.frame array -> prot:Perm.t -> unit -> int

(** [munmap t cpu ~addr ~len] unmaps; frees frames; flushes. *)
val munmap : t -> Cpu.t -> addr:int -> len:int -> unit

type protect_result = {
  vmas_touched : int;
  splits : int;
  merges : int;
  ptes_touched : int;
}

(** Kernel-side [change_protection]: rewrite page permissions over a
    range, charging VMA work, a scan per page slot, an update per
    *present* PTE, and local TLB invalidation. The range must be
    page-aligned and fully covered by VMAs. *)
val change_protection : t -> Cpu.t -> addr:int -> len:int -> prot:Perm.t -> protect_result

(** Same walk, but assigning a protection key as well ([pkey_mprotect]). *)
val change_protection_pkey :
  t -> Cpu.t -> addr:int -> len:int -> prot:Perm.t -> pkey:Pkey.t -> protect_result

(** [assign_pkey t cpu ~addr ~len ~pkey] retags PTEs/VMAs with a key
    without touching page permissions (used by libmpk's key recycling). *)
val assign_pkey : t -> Cpu.t -> addr:int -> len:int -> pkey:Pkey.t -> protect_result

(** Total mapped pages (present PTEs). *)
val mapped_pages : t -> int

(** [show_maps t] — a /proc/pid/maps-style dump of the VMA tree with
    per-area protection key and residency, for debugging:
    {v 10000000-10004000 rw- pkey=3  4/4 pages resident v} *)
val show_maps : t -> string
