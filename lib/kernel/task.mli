(** A kernel task (thread). Each task has its own PKRU state — saved in the
    task struct while descheduled, live in its core's register while on
    CPU — and a [task_work] list of callbacks run on the next return to
    userspace (the hook [do_pkey_sync] relies on, paper Fig 7). *)

open Mpk_hw

type state =
  | On_cpu  (** currently scheduled on [core] *)
  | Off_cpu  (** descheduled; PKRU lives in the task struct *)

type t

(** [create ~id ~core ()] — the task starts [Off_cpu] with Linux's initial
    PKRU. *)
val create : id:int -> core:Cpu.t -> unit -> t

val id : t -> int
val core : t -> Cpu.t
val state : t -> state
val set_state : t -> state -> unit

(** The task's PKRU as the kernel sees it: the core register when on CPU,
    the saved copy otherwise. *)
val pkru : t -> Pkru.t

(** Update the task's PKRU wherever it currently lives (no cycle charge —
    kernel-side state manipulation). *)
val set_pkru : t -> Pkru.t -> unit

val saved_pkru : t -> Pkru.t
val set_saved_pkru : t -> Pkru.t -> unit

(** Lazy TLB shootdown: a shootdown aimed at an off-CPU task marks it
    instead of sending an IPI; the flush is charged and performed at the
    task's next [schedule_in]. *)
val mark_tlb_flush : t -> unit

val clear_tlb_flush : t -> unit
val tlb_flush_pending : t -> bool

(** Install the task's handler for memory-fault signals. A handler that
    wants to survive the fault must escape by raising (the [siglongjmp]
    idiom); returning normally still kills the task — the faulting
    access would just refault. *)
val set_signal_handler : t -> Signal.handler -> unit

val clear_signal_handler : t -> unit

(** [with_signal_handler t h f] runs [f] with [h] installed, restoring
    the previous handler (if any) on exit — including exceptional exit. *)
val with_signal_handler : t -> Signal.handler -> (unit -> 'a) -> 'a

(** Signals delivered to this task so far (handled or fatal). *)
val signals_delivered : t -> int

(** Deliver a signal: run the handler if installed; if none is installed
    or the handler returns normally, raises [Signal.Killed]. Called by
    the kernel's fault sink — never returns normally. *)
val deliver_signal : t -> Signal.siginfo -> 'a

(** Append a callback to the task's [task_work] list. *)
val work_add : t -> (t -> unit) -> unit

(** Number of queued callbacks. *)
val work_pending : t -> int

(** Run and clear all queued callbacks, charging [task_work_run] per
    callback to the task's core. Called on return to userspace. *)
val work_run : t -> unit
