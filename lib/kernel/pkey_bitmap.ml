open Mpk_hw

type t = { mutable bits : int }

let create () = { bits = 1 }  (* key 0 is always taken *)

let alloc t =
  let rec scan k =
    if k >= Pkey.count then None
    else if t.bits land (1 lsl k) = 0 then begin
      t.bits <- t.bits lor (1 lsl k);
      Some (Pkey.of_int k)
    end
    else scan (k + 1)
  in
  scan 1

let free t key =
  let k = Pkey.to_int key in
  if k = 0 then Errno.fail EINVAL "pkey_free: cannot free the default key";
  if t.bits land (1 lsl k) = 0 then Errno.fail EINVAL "pkey_free: key %d not allocated" k;
  t.bits <- t.bits land lnot (1 lsl k)

let is_allocated t key = t.bits land (1 lsl Pkey.to_int key) <> 0

let allocated t =
  List.filter (fun k -> is_allocated t k) Pkey.allocatable

let allocated_count t =
  let rec pop bits acc = if bits = 0 then acc else pop (bits lsr 1) (acc + (bits land 1)) in
  pop t.bits 0 - 1  (* exclude key 0 *)
