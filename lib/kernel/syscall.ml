open Mpk_hw

let syscalls = ref 0

let count () = !syscalls
let reset_count () = syscalls := 0

let enter task =
  incr syscalls;
  let core = Task.core task in
  Cpu.charge ~label:"kernel_entry" core (Cpu.costs core).kernel_entry_exit

(* Every syscall body runs inside [sys]: a per-syscall tracing span plus
   Syscall_enter/Syscall_exit events, the exit carrying the errno when
   the body failed. The charge sequence is unchanged from the untraced
   code — [sys] itself charges nothing. *)
let sys task name f =
  let core = Task.core task in
  Cpu.span core ("sys_" ^ name) (fun () ->
      if Mpk_trace.Tracer.on () then
        Cpu.emit core (Mpk_trace.Event.Syscall_enter { name });
      enter task;
      match f () with
      | v ->
          if Mpk_trace.Tracer.on () then
            Cpu.emit core (Mpk_trace.Event.Syscall_exit { name; errno = None });
          v
      | exception (Errno.Error (e, _) as exn) ->
          if Mpk_trace.Tracer.on () then
            Cpu.emit core
              (Mpk_trace.Event.Syscall_exit { name; errno = Some (Errno.to_string e) });
          raise exn)

(* Charged on top of the plain mprotect path by pkey_mprotect: the bitmap
   validity check (Table 1: 1104.9 vs 1094.0 cycles). *)
let pkey_check_cost = 10.9

let other_tasks proc task =
  List.filter (fun t -> Task.id t <> Task.id task) (Proc.tasks proc)

let shootdown_others proc task =
  let sched = Proc.sched proc in
  List.iter (fun t -> Sched.shootdown sched ~from:task t) (other_tasks proc task)

let mmap proc task ?at ~len ~prot () =
  sys task "mmap" (fun () ->
      Mm.mmap (Proc.mm proc) (Task.core task) ?at ~len ~prot ())

let munmap proc task ~addr ~len =
  sys task "munmap" (fun () ->
      Mm.munmap (Proc.mm proc) (Task.core task) ~addr ~len;
      shootdown_others proc task)

(* Fault injection: a pkey_alloc that fails with ENOSPC even though the
   bitmap has free keys (e.g. another process raced us to them). *)
let fp_pkey_alloc = "syscall.pkey_alloc"
let () = Mpk_faultinj.declare fp_pkey_alloc

let alloc_key proc =
  if Mpk_faultinj.fire fp_pkey_alloc then
    Errno.fail ENOSPC "no free protection key (injected)";
  match Pkey_bitmap.alloc (Proc.pkey_bitmap proc) with
  | Some k -> k
  | None -> Errno.fail ENOSPC "no free protection key"

let is_exec_only (prot : Perm.t) = prot.exec && (not prot.read) && not prot.write

let mprotect_exec_only proc task ~addr ~len =
  (* Linux's execute-only memory: allocate (once) the process's
     execute-only key, map the range readable+executable at the PTE level
     but tagged with that key, and disable access in the caller's PKRU.
     Crucially, *other* threads' PKRUs are not synchronized. *)
  let core = Task.core task in
  let key =
    match Proc.xonly_key proc with
    | Some k -> k
    | None ->
        Cpu.charge ~label:"pkey_alloc_work" core (Cpu.costs core).pkey_alloc_work;
        let k = alloc_key proc in
        Proc.set_xonly_key proc k;
        k
  in
  ignore
    (Mm.change_protection_pkey (Proc.mm proc) core ~addr ~len ~prot:Perm.rx ~pkey:key);
  Task.set_pkru task (Pkru.set_rights (Task.pkru task) key Pkru.No_access);
  shootdown_others proc task

let mprotect proc task ~addr ~len ~prot =
  sys task "mprotect" (fun () ->
      if is_exec_only prot then mprotect_exec_only proc task ~addr ~len
      else begin
        ignore (Mm.change_protection (Proc.mm proc) (Task.core task) ~addr ~len ~prot);
        shootdown_others proc task
      end)

let pkey_alloc proc task ~init_rights =
  sys task "pkey_alloc" (fun () ->
      let core = Task.core task in
      Cpu.charge ~label:"pkey_alloc_work" core (Cpu.costs core).pkey_alloc_work;
      let key = alloc_key proc in
      Task.set_pkru task (Pkru.set_rights (Task.pkru task) key init_rights);
      key)

let pkey_free proc task key =
  sys task "pkey_free" (fun () ->
      let core = Task.core task in
      Cpu.charge ~label:"pkey_free_work" core (Cpu.costs core).pkey_free_work;
      (* Only the bitmap is updated: PTEs keep the stale key and every
         thread's PKRU keeps its stale rights — the paper's §3.1 hazard. *)
      Pkey_bitmap.free (Proc.pkey_bitmap proc) key)

let pkey_mprotect proc task ~addr ~len ~prot ~pkey =
  sys task "pkey_mprotect" (fun () ->
      let core = Task.core task in
      Cpu.charge ~label:"pkey_bitmap_check" core pkey_check_cost;
      if Pkey.to_int pkey = 0 then
        Errno.fail EINVAL "pkey_mprotect: userspace may not assign the default key";
      if not (Pkey_bitmap.is_allocated (Proc.pkey_bitmap proc) pkey) then
        Errno.fail EINVAL "pkey_mprotect: key %d not allocated" (Pkey.to_int pkey);
      ignore (Mm.change_protection_pkey (Proc.mm proc) core ~addr ~len ~prot ~pkey);
      shootdown_others proc task)

(* Deferred PKRU scrub/update, the paper's lazy do_pkey_sync: queueing the
   task_work is the "deferred" trace event; the work closure running on
   the target (at its next return to user) is the "executed" one. *)
let queue_pkru_update ~core ~pkey_int target make_pkru =
  Cpu.charge ~label:"task_work_add" core (Cpu.costs core).task_work_add;
  if Mpk_trace.Tracer.on () then
    Cpu.emit core
      (Mpk_trace.Event.Pkey_sync_deferred { target = Task.id target; pkey = pkey_int });
  Task.work_add target (fun t ->
      Task.set_pkru t (make_pkru t);
      if Mpk_trace.Tracer.on () then
        Cpu.emit (Task.core t)
          (Mpk_trace.Event.Pkey_sync_executed { target = Task.id t; pkey = pkey_int }))

(* IPI batching for the lazy-sync paths: on by default; the per-update
   broadcast (one kick per target per PKRU update) is kept behind this
   toggle as the reference point `mpkctl scale` compares against. *)
let batching = ref true

let ipi_batching () = !batching
let set_ipi_batching b = batching := b

(* Shared body of pkey_sync / pkey_sync_many: queue every (pkey, rights)
   update on every other thread, then notify. Each handshake is charged
   exactly once:
   - lazy, batched: one IPI per distinct core with an on-CPU target
     (sender pays ipi_send per core, the core pays ipi_receive once);
   - lazy, per-update: one kick per target per update — [Sched.kick]
     itself carries the whole charge and is free for off-CPU targets;
   - eager, on-CPU target: the kick pays send (sender) + receive
     (target); the initiator additionally spin-waits one receive latency
     for the ack;
   - eager, off-CPU target: the sender pays the wakeup IPI + spin; the
     target pays its own context switch inside [schedule_in]. *)
let sync_updates proc task ~eager updates =
  let core = Task.core task in
  let costs = Cpu.costs core in
  let sched = Proc.sched proc in
  let others = other_tasks proc task in
  List.iter
    (fun t ->
      List.iter
        (fun (pkey, rights) ->
          queue_pkru_update ~core ~pkey_int:(Pkey.to_int pkey) t (fun t ->
              Pkru.set_rights (Task.pkru t) pkey rights))
        updates)
    others;
  if eager then
    List.iter
      (fun t ->
        match Task.state t with
        | Task.On_cpu ->
            Sched.kick sched ~from:task t;
            Cpu.charge ~label:"ipi_spin" core costs.ipi_receive
        | Task.Off_cpu ->
            Cpu.charge ~label:"ipi_send" core costs.ipi_send;
            Cpu.charge ~label:"ipi_spin" core costs.ipi_receive;
            Sched.schedule_in sched t)
      others
  else if !batching then ignore (Sched.kick_batch sched ~from:task others)
  else
    List.iter (fun t -> List.iter (fun _ -> Sched.kick sched ~from:task t) updates) others

let pkey_unmap_group proc task ~addr ~len ~prot ~old_pkey =
  sys task "pkey_unmap_group" (fun () ->
      let core = Task.core task in
      ignore
        (Mm.change_protection_pkey (Proc.mm proc) core ~addr ~len ~prot
           ~pkey:Pkey.default);
      (* Scrub stale rights for the recycled key everywhere, caller included. *)
      Task.set_pkru task (Pkru.set_rights (Task.pkru task) old_pkey Pkru.No_access);
      let others = other_tasks proc task in
      List.iter
        (fun t ->
          queue_pkru_update ~core ~pkey_int:(Pkey.to_int old_pkey) t (fun t ->
              Pkru.set_rights (Task.pkru t) old_pkey Pkru.No_access))
        others;
      if !batching then
        (* One synchronous IPI per target core both drains the PKRU scrub
           and flushes the TLB — the per-update path below sends two. *)
        ignore
          (Sched.kick_batch (Proc.sched proc) ~from:task ~kind:"pkey_sync_shootdown"
             ~flush_tlb:true ~sync:true others)
      else begin
        List.iter (fun t -> Sched.kick (Proc.sched proc) ~from:task t) others;
        shootdown_others proc task
      end)

let pkey_sync proc task ?(eager = false) ~pkey rights =
  sys task "pkey_sync" (fun () -> sync_updates proc task ~eager [ (pkey, rights) ])

let pkey_sync_many proc task ~updates =
  sys task "pkey_sync" (fun () -> sync_updates proc task ~eager:false updates)
