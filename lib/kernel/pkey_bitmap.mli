(** The kernel's 16-bit protection-key allocation bitmap.

    Faithful to the paper's §2.2/§3.1 semantics: [free] only clears the
    bitmap bit — PTEs still tagged with the key are *not* scrubbed, which
    is exactly the protection-key-use-after-free hazard libmpk closes. *)

open Mpk_hw

type t

(** Fresh bitmap: key 0 permanently allocated (the default key). *)
val create : unit -> t

(** Lowest free key, marking it allocated. [None] when all 15 are taken. *)
val alloc : t -> Pkey.t option

(** Marks a key free. Raises [Errno.Error EINVAL] for key 0 or a key that
    is not currently allocated. *)
val free : t -> Pkey.t -> unit

val is_allocated : t -> Pkey.t -> bool
val allocated_count : t -> int

(** Currently allocated keys, ascending (key 0 excluded). *)
val allocated : t -> Pkey.t list
