open Mpk_hw

type t = {
  machine : Machine.t;
  mm : Mm.t;
  sched : Sched.t;
  pkeys : Pkey_bitmap.t;
  mutable xonly : Pkey.t option;
}

let create machine =
  let mm = Mm.create (Machine.mem machine) in
  let sched = Sched.create machine in
  (* Signal delivery: an unresolved user fault traps to the kernel, which
     classifies it into a siginfo (SEGV_PKUERR carries the page's key)
     and delivers it to the task on the faulting core. Cores with no task
     (bare-hardware use) fall back to the raw [Mmu.Fault]. *)
  Mmu.set_fault_sink (Mm.mmu mm) (fun cpu (fault : Mmu.fault) ->
      match Sched.task_on sched ~core_id:(Cpu.id cpu) with
      | None -> ()
      | Some task ->
          Cpu.charge ~label:"kernel_entry" cpu (Cpu.costs cpu).kernel_entry_exit;
          let pkey =
            match fault.Mmu.cause with
            | Mmu.Pkey_denied ->
                let vpn = Page_table.vpn_of_addr fault.Mmu.addr in
                Pkey.to_int (Pte.pkey (Page_table.get (Mm.page_table mm) ~vpn))
            | _ -> 0
          in
          Task.deliver_signal task (Signal.of_fault fault ~pkey));
  (* Injected preemption ("sched.preempt") bounces the current task
     through a real schedule_out/in pair. *)
  Mpk_faultinj.set_preempt_action (fun core_id -> Sched.preempt sched ~core_id);
  { machine; mm; sched; pkeys = Pkey_bitmap.create (); xonly = None }

let machine t = t.machine
let mm t = t.mm
let mmu t = Mm.mmu t.mm
let sched t = t.sched
let pkey_bitmap t = t.pkeys
let tasks t = Sched.tasks t.sched

let spawn t ?inherit_from ~core_id () =
  let task = Sched.spawn t.sched ~core_id in
  (match inherit_from with
  | Some parent -> Task.set_pkru task (Task.pkru parent)
  | None -> ());
  task

let xonly_key t = t.xonly
let set_xonly_key t k = t.xonly <- Some k
