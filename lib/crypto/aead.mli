(** Encrypt-then-MAC AEAD over ChaCha20 + HMAC-SHA256.

    The core-dump writer needs authenticated encryption with associated
    data: protected pages are encrypted, and the dump metadata (task id,
    fault siginfo, pkey, page range) is bound into the tag so a section
    cannot be spliced into another dump — or moved within its own — and
    still verify.

    Construction (encrypt-then-MAC, the order with a security proof):
    two independent subkeys are derived from the caller's key, the
    plaintext is encrypted with ChaCha20 under the encryption subkey,
    and the tag is HMAC-SHA256 under the MAC subkey over the
    length-prefixed concatenation [len(aad) || aad || len(nonce) ||
    nonce || ciphertext] — length prefixes prevent aad/ciphertext
    boundary ambiguity. Verification compares tags in constant time and
    decrypts only after the tag checks. *)

val key_bytes : int
(** 32. *)

val nonce_bytes : int
(** 12 (the ChaCha20 IETF nonce). *)

val tag_bytes : int
(** 32 (full HMAC-SHA256 output; not truncated). *)

val seal : key:bytes -> nonce:bytes -> aad:bytes -> bytes -> bytes * bytes
(** [seal ~key ~nonce ~aad plaintext] is [(ciphertext, tag)].
    Raises [Invalid_argument] on wrong key/nonce sizes. Deterministic:
    the caller owns nonce uniqueness. *)

val verify : key:bytes -> nonce:bytes -> aad:bytes -> tag:bytes -> bytes -> bool
(** Tag check only (constant-time compare), no decryption — what an
    offline inspector without any interest in the plaintext runs. *)

val open_ :
  key:bytes -> nonce:bytes -> aad:bytes -> tag:bytes -> bytes -> (bytes, string) result
(** [open_ ~key ~nonce ~aad ~tag ciphertext] verifies then decrypts.
    Any forgery — flipped ciphertext bit, swapped nonce, altered aad,
    truncated or wrong-length tag — yields [Error]. *)
