let key_bytes = 32
let nonce_bytes = 12
let tag_bytes = 32

let check_sizes ~key ~nonce =
  if Bytes.length key <> key_bytes then
    invalid_arg (Printf.sprintf "Aead: key must be %d bytes" key_bytes);
  if Bytes.length nonce <> nonce_bytes then
    invalid_arg (Printf.sprintf "Aead: nonce must be %d bytes" nonce_bytes)

(* Independent subkeys so a ciphertext never doubles as MAC input keyed
   with the encryption key. *)
let enc_key key = Hmac.derive ~secret:key ~label:"aead-chacha20-enc" ~len:key_bytes
let mac_key key = Hmac.derive ~secret:key ~label:"aead-hmac-mac" ~len:key_bytes

let le64 n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  b

let mac_input ~aad ~nonce ciphertext =
  Bytes.concat Bytes.empty
    [ le64 (Bytes.length aad); aad; le64 (Bytes.length nonce); nonce; ciphertext ]

let tag_of ~key ~nonce ~aad ciphertext =
  Hmac.sha256 ~key:(mac_key key) (mac_input ~aad ~nonce ciphertext)

(* Constant-time equality: accumulate the XOR of every byte pair so the
   comparison cost does not depend on where the first difference is. *)
let ct_equal a b =
  Bytes.length a = Bytes.length b
  && begin
       let acc = ref 0 in
       for i = 0 to Bytes.length a - 1 do
         acc := !acc lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
       done;
       !acc = 0
     end

let seal ~key ~nonce ~aad plaintext =
  check_sizes ~key ~nonce;
  let ciphertext = Chacha20.crypt ~key:(enc_key key) ~nonce plaintext in
  (ciphertext, tag_of ~key ~nonce ~aad ciphertext)

let verify ~key ~nonce ~aad ~tag ciphertext =
  check_sizes ~key ~nonce;
  ct_equal tag (tag_of ~key ~nonce ~aad ciphertext)

let open_ ~key ~nonce ~aad ~tag ciphertext =
  if not (verify ~key ~nonce ~aad ~tag ciphertext) then
    Error "AEAD: authentication failed"
  else Ok (Chacha20.crypt ~key:(enc_key key) ~nonce ciphertext)
