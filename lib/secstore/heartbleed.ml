open Mpk_hw
open Mpk_kernel

type outcome = Leaked of bytes | Crashed of string

let echo ks task ~payload ~claimed_len =
  let buf = Keystore.alloc_request_buffer ks task ~len:(Bytes.length payload) in
  Mmu.write_bytes (Proc.mmu (Keystore.proc_of ks)) (Task.core task) ~addr:buf payload;
  match Keystore.attacker_read ks task ~addr:buf ~len:claimed_len with
  | data -> Leaked data
  | exception Mmu.Fault f -> Crashed (Mmu.fault_to_string f)
  | exception Signal.Killed si -> Crashed (Signal.to_string si)

let contains ~needle hay =
  let n = Bytes.length needle and h = Bytes.length hay in
  if n = 0 || n > h then false
  else begin
    let rec scan i = i + n <= h && (Bytes.equal (Bytes.sub hay i n) needle || scan (i + 1)) in
    scan 0
  end

let leaks_secret ks task outcome =
  match outcome with
  | Crashed _ -> false
  | Leaked data ->
      let addr, len = Keystore.secret_region ks in
      ignore addr;
      let secret =
        Keystore.with_secret ks task (fun s ->
            let b = Mpk_crypto.Bignum.to_bytes s.Mpk_crypto.Rsa.d in
            b)
      in
      ignore len;
      contains ~needle:secret data
