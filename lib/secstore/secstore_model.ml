(* IR model of the OpenSSL-style key store's libmpk protocol (§6.2).

   One page group (the hardcoded vkey from Keystore) holds the serialized
   RSA secret. The secret is written once inside an rw domain; every TLS
   handshake opens a read-only domain around the signing read. A signal
   guard models the per-request fault handler: a pkey fault during the
   read escapes to a handler that closes the domain and drops the
   session (so even the fault path stays begin/end balanced).

   Planted violations (behind flags):
   - [`Use_after_free]  a stale session drained after the key is
                        scrubbed: begin/read on the freed vkey
   - [`Double_free]     the shutdown path frees the group twice
   - [`Leak]            shutdown forgets the free entirely (leak-on-exit) *)

open Mpk_analysis
open Mpk_hw

let key_vkey = Keystore.vkey

let program ?plant () =
  let open Ir in
  let sign_session =
    [
      op (Begin { vkey = key_vkey; prot = Perm.r });
      Guard
        ( [ label "derive signature"; op (Read { vkey = key_vkey }); op (End { vkey = key_vkey }) ],
          [ op (End { vkey = key_vkey }); label "drop session" ] );
    ]
  in
  let main =
    [
      op (Mmap { vkey = key_vkey; pages = 1; prot = Perm.rw });
      label "store secret";
      op (Begin { vkey = key_vkey; prot = Perm.rw });
      op (Write { vkey = key_vkey });
      op (End { vkey = key_vkey });
      Loop
        ( "serve TLS",
          [ If ("handshake?", sign_session, [ label "static response" ]) ] );
    ]
    @ (match plant with
      | Some `Leak -> [ label "shutdown (free forgotten)" ]
      | Some `Double_free ->
          [ op (Free { vkey = key_vkey }); op (Free { vkey = key_vkey }) ]
      | Some `Use_after_free ->
          op (Free { vkey = key_vkey })
          :: label "drain stale session"
          :: sign_session
      | None -> [ op (Free { vkey = key_vkey }) ])
  in
  Ir.build ~name:"secstore" ~main ()
