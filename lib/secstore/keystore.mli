(** The OpenSSL case study's key storage (paper §5.1).

    Private keys are serialized into *simulated* memory. In [Insecure]
    mode they live in an ordinary heap region next to request buffers —
    exactly the layout Heartbleed leaked. In [Protected] mode they live in
    an mpk heap ([mpk_malloc]) and every legitimate access is wrapped in
    [mpk_begin]/[mpk_end], so an out-of-bounds read faults. *)

open Mpk_kernel

type mode = Insecure | Protected

type t

(** The virtual key the keystore hardcodes for its page group. *)
val vkey : Libmpk.Vkey.t

(** [create ~mode proc task ?mpk ()] — [mpk] is required in [Protected]
    mode. The store reserves a heap region; in [Insecure] mode the region
    is a plain [mmap]. *)
val create : mode:mode -> Proc.t -> Task.t -> ?mpk:Libmpk.t -> unit -> t

val mode : t -> mode
val proc_of : t -> Proc.t

(** [store t task kp] serializes the private exponent and modulus into
    the (possibly protected) region. Returns the address. *)
val store : t -> Task.t -> Mpk_crypto.Rsa.keypair -> int

(** [store_opaque t task data] — store an arbitrary secret blob through
    the same path as {!store} (protected mode: [mpk_malloc] + a
    begin/write/end window). Used by the core-dump leak check to plant a
    known sentinel in a pkey-protected page. Returns the address. *)
val store_opaque : t -> Task.t -> bytes -> int

(** [with_secret t task f] — read the key material back from simulated
    memory through the MMU (unlocking the domain first in [Protected]
    mode) and run [f] on the reconstructed secret. *)
val with_secret : t -> Task.t -> (Mpk_crypto.Rsa.secret -> 'a) -> 'a

(** Public half, kept in ordinary memory (it is not sensitive). *)
val public : t -> Mpk_crypto.Rsa.public

(** Address/length of the serialized secret — used by the Heartbleed PoC
    to aim its out-of-bounds read. *)
val secret_region : t -> int * int

(** [alloc_request_buffer t task ~len] — a buffer placed *below* the key
    material (insecure mode: same region; protected mode: an ordinary
    mapping), as the overflow origin. Returns its address. *)
val alloc_request_buffer : t -> Task.t -> len:int -> int

(** Raw (unchecked-by-libmpk) read used by the attacker simulation: reads
    through the MMU with the attacker's task. *)
val attacker_read : t -> Task.t -> addr:int -> len:int -> bytes
