open Mpk_hw
open Mpk_kernel
open Mpk_crypto

type t = {
  ks : Keystore.t;
  proc : Proc.t;
  latency : Mpk_util.Stats.Histogram.h;  (* per-request cycles, all entry points *)
  mutable handshakes : int;
  mutable requests : int;
  mutable heartbeats : int;
  mutable heartbeats_rejected : int;
}

type session = { key : bytes; nonce : bytes }

(* ~0.2 ms at 2.4 GHz: the ballpark of a 1024-bit RSA private-key op. *)
let rsa_decrypt_cycles = 500_000.0

(* symmetric crypto + copy per payload byte *)
let per_byte_cycles = 3.0

let create ~mode proc task ?mpk ~seed () =
  let prng = Mpk_util.Prng.create ~seed in
  let kp = Rsa.generate prng ~bits:128 in
  let ks = Keystore.create ~mode proc task ?mpk () in
  ignore (Keystore.store ks task kp);
  {
    ks;
    proc;
    (* lo 256 cycles: serve requests sit in the thousands, handshakes
       near rsa_decrypt_cycles — the same log-bucket layout the kvstore
       uses, shifted down for the cheap record path *)
    latency = Mpk_util.Stats.Histogram.create ~lo:256.0 ~growth:2.0 ~buckets:24 ();
    handshakes = 0;
    requests = 0;
    heartbeats = 0;
    heartbeats_rejected = 0;
  }

let keystore t = t.ks

(* End-to-end core cycles per request, kvstore-style: Fun.protect so a
   faulting heartbeat still lands a sample. *)
let timed t task f =
  let core = Task.core task in
  let start = Cpu.cycles core in
  Fun.protect
    ~finally:(fun () ->
      Mpk_util.Stats.Histogram.add t.latency (Cpu.cycles core -. start))
    f

let premaster_len = 8

let client_hello t prng =
  let premaster = Bytes.init premaster_len (fun _ -> Char.chr (Mpk_util.Prng.int prng 256)) in
  let blob = Rsa.encrypt_bytes (Keystore.public t.ks) premaster in
  let key = Hmac.derive ~secret:premaster ~label:"session" ~len:32 in
  blob, key

(* The private-key operation: key bytes are fetched from (protected)
   simulated memory, and the heavy modexp is charged to the core. *)
let accept_session t task blob =
  let premaster =
    Keystore.with_secret t.ks task (fun secret ->
        Cpu.charge ~label:"rsa_decrypt" (Task.core task) rsa_decrypt_cycles;
        Rsa.decrypt_bytes_padded secret blob ~len:premaster_len)
  in
  {
    key = Hmac.derive ~secret:premaster ~label:"session" ~len:32;
    nonce = Bytes.make 12 '\000';
  }

let accept t task blob =
  timed t task @@ fun () ->
  t.handshakes <- t.handshakes + 1;
  accept_session t task blob

let transcript ~client_random ~blob = Bytes.cat client_random blob

let accept_authenticated t task ~client_random blob =
  timed t task @@ fun () ->
  t.handshakes <- t.handshakes + 1;
  let session = accept_session t task blob in
  let signature =
    Keystore.with_secret t.ks task (fun secret ->
        Cpu.charge ~label:"rsa_decrypt" (Task.core task) rsa_decrypt_cycles;
        Rsa.sign secret (transcript ~client_random ~blob))
  in
  session, signature

let verify_server t ~client_random ~blob ~signature =
  Rsa.verify (Keystore.public t.ks) ~msg:(transcript ~client_random ~blob) ~signature

let session_key s = s.key

type heartbeat_outcome = Served of bytes | Rejected of Signal.siginfo

exception Heartbeat_fault of Signal.siginfo

(* The Heartbleed-shaped request: echo [claimed_len] bytes from a buffer
   that only holds [payload]. An honest length echoes; an over-long one
   walks into protected memory, and instead of leaking (Baseline) or
   dying, the worker catches its own SIGSEGV, drops the request, and the
   session stays usable. *)
let handle_heartbeat t task ~payload ~claimed_len =
  timed t task @@ fun () ->
  t.heartbeats <- t.heartbeats + 1;
  let core = Task.core task in
  let mmu = Proc.mmu t.proc in
  let buf = Keystore.alloc_request_buffer t.ks task ~len:(Bytes.length payload) in
  Mmu.write_bytes mmu core ~addr:buf payload;
  Cpu.charge ~label:"record_copy" core (float_of_int (max 1 claimed_len) *. per_byte_cycles);
  match
    Task.with_signal_handler task
      (fun si -> raise (Heartbeat_fault si))
      (fun () -> Served (Mmu.read_bytes mmu core ~addr:buf ~len:claimed_len))
  with
  | outcome -> outcome
  | exception Heartbeat_fault si ->
      t.heartbeats_rejected <- t.heartbeats_rejected + 1;
      Rejected si

let serve t task session ~size =
  timed t task @@ fun () ->
  t.requests <- t.requests + 1;
  ignore t.proc;
  let core = Task.core task in
  (* Request decrypt (small) + response build/encrypt (size-dependent). *)
  Cpu.charge ~label:"record_copy" core (64.0 *. per_byte_cycles);
  Cpu.charge ~label:"record_copy" core (float_of_int size *. per_byte_cycles);
  (* Produce a real (sampled) ciphertext so correctness is testable
     without streaming megabytes through the simulator. *)
  let sample = min size 4096 in
  let body = Bytes.make sample 'd' in
  Chacha20.crypt ~key:session.key ~nonce:session.nonce body

(* Stats reply in the kvstore server's key/value shape, histogram
   percentiles included — the hook the secstore scale-out will read. *)
let latency t = t.latency

let stats_reply t =
  let h = t.latency in
  let counters =
    [
      "handshakes", string_of_int t.handshakes;
      "requests", string_of_int t.requests;
      "heartbeats", string_of_int t.heartbeats;
      "heartbeats_rejected", string_of_int t.heartbeats_rejected;
      "latency_samples", string_of_int (Mpk_util.Stats.Histogram.count h);
    ]
  in
  if Mpk_util.Stats.Histogram.count h = 0 then counters
  else
    let cy p = Printf.sprintf "%.0f" (Mpk_util.Stats.Histogram.percentile h p) in
    counters
    @ [
        "latency_p50_cycles", cy 50.0;
        "latency_p95_cycles", cy 95.0;
        "latency_p99_cycles", cy 99.0;
      ]
