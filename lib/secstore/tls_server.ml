open Mpk_hw
open Mpk_kernel
open Mpk_crypto

type t = { ks : Keystore.t; proc : Proc.t }

type session = { key : bytes; nonce : bytes }

(* ~0.2 ms at 2.4 GHz: the ballpark of a 1024-bit RSA private-key op. *)
let rsa_decrypt_cycles = 500_000.0

(* symmetric crypto + copy per payload byte *)
let per_byte_cycles = 3.0

let create ~mode proc task ?mpk ~seed () =
  let prng = Mpk_util.Prng.create ~seed in
  let kp = Rsa.generate prng ~bits:128 in
  let ks = Keystore.create ~mode proc task ?mpk () in
  ignore (Keystore.store ks task kp);
  { ks; proc }

let keystore t = t.ks

let premaster_len = 8

let client_hello t prng =
  let premaster = Bytes.init premaster_len (fun _ -> Char.chr (Mpk_util.Prng.int prng 256)) in
  let blob = Rsa.encrypt_bytes (Keystore.public t.ks) premaster in
  let key = Hmac.derive ~secret:premaster ~label:"session" ~len:32 in
  blob, key

let accept t task blob =
  (* The private-key operation: key bytes are fetched from (protected)
     simulated memory, and the heavy modexp is charged to the core. *)
  let premaster =
    Keystore.with_secret t.ks task (fun secret ->
        Cpu.charge ~label:"rsa_decrypt" (Task.core task) rsa_decrypt_cycles;
        Rsa.decrypt_bytes_padded secret blob ~len:premaster_len)
  in
  {
    key = Hmac.derive ~secret:premaster ~label:"session" ~len:32;
    nonce = Bytes.make 12 '\000';
  }

let transcript ~client_random ~blob = Bytes.cat client_random blob

let accept_authenticated t task ~client_random blob =
  let session = accept t task blob in
  let signature =
    Keystore.with_secret t.ks task (fun secret ->
        Cpu.charge ~label:"rsa_decrypt" (Task.core task) rsa_decrypt_cycles;
        Rsa.sign secret (transcript ~client_random ~blob))
  in
  session, signature

let verify_server t ~client_random ~blob ~signature =
  Rsa.verify (Keystore.public t.ks) ~msg:(transcript ~client_random ~blob) ~signature

let session_key s = s.key

type heartbeat_outcome = Served of bytes | Rejected of Signal.siginfo

exception Heartbeat_fault of Signal.siginfo

(* The Heartbleed-shaped request: echo [claimed_len] bytes from a buffer
   that only holds [payload]. An honest length echoes; an over-long one
   walks into protected memory, and instead of leaking (Baseline) or
   dying, the worker catches its own SIGSEGV, drops the request, and the
   session stays usable. *)
let handle_heartbeat t task ~payload ~claimed_len =
  let core = Task.core task in
  let mmu = Proc.mmu t.proc in
  let buf = Keystore.alloc_request_buffer t.ks task ~len:(Bytes.length payload) in
  Mmu.write_bytes mmu core ~addr:buf payload;
  Cpu.charge ~label:"record_copy" core (float_of_int (max 1 claimed_len) *. per_byte_cycles);
  try
    Task.with_signal_handler task
      (fun si -> raise (Heartbeat_fault si))
      (fun () -> Served (Mmu.read_bytes mmu core ~addr:buf ~len:claimed_len))
  with Heartbeat_fault si -> Rejected si

let serve t task session ~size =
  ignore t.proc;
  let core = Task.core task in
  (* Request decrypt (small) + response build/encrypt (size-dependent). *)
  Cpu.charge ~label:"record_copy" core (64.0 *. per_byte_cycles);
  Cpu.charge ~label:"record_copy" core (float_of_int size *. per_byte_cycles);
  (* Produce a real (sampled) ciphertext so correctness is testable
     without streaming megabytes through the simulator. *)
  let sample = min size 4096 in
  let body = Bytes.make sample 'd' in
  Chacha20.crypt ~key:session.key ~nonce:session.nonce body
