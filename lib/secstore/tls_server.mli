(** A toy TLS-terminating HTTP server (the paper's httpd+OpenSSL target).

    Handshake: the client encrypts a premaster secret under the server's
    RSA public key; the server decrypts it with the private key held in
    the {!Keystore} (unlocking the mpk domain around each key access in
    [Protected] mode) and both sides derive a ChaCha20 session key.
    Requests then carry encrypted payloads whose processing cost scales
    with size.

    Heavyweight crypto that the simulator does not execute byte-for-byte
    is charged via the cycle model ([rsa_decrypt_cycles],
    [per_byte_cycles]) so throughput figures reflect a realistic balance
    between handshake, payload and — the point of Fig 11 — libmpk's
    per-access overhead. *)

open Mpk_kernel

type t

type session

(** Cycle charge for one private-key operation (models 1024-bit RSA). *)
val rsa_decrypt_cycles : float

(** Cycle charge per payload byte (encrypt + copy). *)
val per_byte_cycles : float

(** [create ~mode proc task ?mpk ~seed ()] — generates a keypair and
    stores it. *)
val create : mode:Keystore.mode -> Proc.t -> Task.t -> ?mpk:Libmpk.t -> seed:int64 -> unit -> t

val keystore : t -> Keystore.t

(** Client side of the handshake: returns the wire blob and the client's
    session key. *)
val client_hello : t -> Mpk_util.Prng.t -> bytes * bytes

(** Server side: decrypt the premaster (inside the protected domain),
    derive the session. *)
val accept : t -> Task.t -> bytes -> session

(** [accept_authenticated t task ~client_random blob] — like [accept],
    but the server also signs the handshake transcript with its private
    key (a second protected-key operation, as real TLS server auth
    does). Returns the session and the signature. *)
val accept_authenticated :
  t -> Task.t -> client_random:bytes -> bytes -> session * bytes

(** Client-side check of the server's transcript signature. *)
val verify_server : t -> client_random:bytes -> blob:bytes -> signature:bytes -> bool

val session_key : session -> bytes

(** [serve t task session ~size] — handle one request with a [size]-byte
    response: decrypt-request + build + encrypt-response, all charged to
    the task's core. Returns the (encrypted) response. *)
val serve : t -> Task.t -> session -> size:int -> bytes

(** Outcome of a heartbeat request (the Heartbleed probe). *)
type heartbeat_outcome =
  | Served of bytes  (** echoed bytes — over-long reads leak memory *)
  | Rejected of Signal.siginfo
      (** the read faulted on protected memory; the worker caught the
          signal, dropped the request and keeps serving *)

(** [handle_heartbeat t task ~payload ~claimed_len] — echo [claimed_len]
    bytes back from a request buffer holding [payload]. The worker
    installs a signal handler for the duration of the copy, so a pkey
    fault on the keystore's pages rejects the one request instead of
    killing the server. *)
val handle_heartbeat :
  t -> Task.t -> payload:bytes -> claimed_len:int -> heartbeat_outcome

(** {2 Observability}

    Every entry point ([accept], [accept_authenticated], [serve],
    [handle_heartbeat]) records its end-to-end core cycles into a
    log-bucket latency histogram — the same instrument the kvstore
    server carries — so the secstore scale-out can be measured from day
    one. Rejected heartbeats still record a sample. *)

val latency : t -> Mpk_util.Stats.Histogram.h

(** Key/value stats in the kvstore server's reply shape: request
    counters plus [latency_samples] and, once any sample exists,
    [latency_p50_cycles] / [latency_p95_cycles] / [latency_p99_cycles]. *)
val stats_reply : t -> (string * string) list
