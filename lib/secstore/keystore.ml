open Mpk_hw
open Mpk_kernel
open Mpk_crypto

type mode = Insecure | Protected

let vkey = 100  (* hardcoded, as §4.3 requires *)

let page = Physmem.page_size

type t = {
  mode : mode;
  proc : Proc.t;
  mpk : Libmpk.t option;
  region : int;  (* insecure heap base *)
  mutable bump : int;  (* next free offset in the insecure region *)
  mutable secret_addr : int;
  mutable secret_len : int;
  mutable pub : Rsa.public option;
  mutable adjacent_free : bool;  (* protected: guard-page slot unused *)
}

let insecure_region_pages = 16

(* Insecure layout: request buffers bump-allocate from the region base;
   the serialized key lives at this fixed offset just above them — the
   adjacency Heartbleed exploited. *)
let insecure_key_offset = 1024

let create ~mode proc task ?mpk () =
  (match mode, mpk with
  | Protected, None -> invalid_arg "Keystore.create: Protected mode requires ~mpk"
  | _ -> ());
  let region =
    match mode with
    | Insecure -> Syscall.mmap proc task ~len:(insecure_region_pages * page) ~prot:Perm.rw ()
    | Protected -> 0
  in
  {
    mode;
    proc;
    mpk;
    region;
    bump = 0;
    secret_addr = 0;
    secret_len = 0;
    pub = None;
    adjacent_free = true;
  }

let mode t = t.mode
let proc_of t = t.proc

let serialize_secret (s : Rsa.secret) =
  let n = Bignum.to_bytes s.Rsa.n in
  let d = Bignum.to_bytes s.Rsa.d in
  let out = Bytes.create (4 + Bytes.length n + Bytes.length d) in
  Bytes.set_uint16_le out 0 (Bytes.length n);
  Bytes.set_uint16_le out 2 (Bytes.length d);
  Bytes.blit n 0 out 4 (Bytes.length n);
  Bytes.blit d 0 out (4 + Bytes.length n) (Bytes.length d);
  out

let deserialize_secret b : Rsa.secret =
  let nlen = Bytes.get_uint16_le b 0 in
  let dlen = Bytes.get_uint16_le b 2 in
  {
    Rsa.n = Bignum.of_bytes (Bytes.sub b 4 nlen);
    Rsa.d = Bignum.of_bytes (Bytes.sub b (4 + nlen) dlen);
  }

let insecure_alloc t len =
  let addr = t.region + t.bump in
  t.bump <- t.bump + len;
  if t.bump > insecure_key_offset then failwith "Keystore: request-buffer area full";
  addr

let store_bytes t task data =
  let len = Bytes.length data in
  if len > (insecure_region_pages * page) - insecure_key_offset then
    failwith "Keystore: key too large";
  let addr =
    match t.mode, t.mpk with
    | Insecure, _ -> t.region + insecure_key_offset
    | Protected, Some mpk -> Libmpk.mpk_malloc mpk task ~vkey ~size:len
    | Protected, None -> assert false
  in
  (match t.mode, t.mpk with
  | Insecure, _ -> Mmu.write_bytes (Proc.mmu t.proc) (Task.core task) ~addr data
  | Protected, Some mpk ->
      Libmpk.mpk_begin mpk task ~vkey ~prot:Perm.rw;
      Mmu.write_bytes (Proc.mmu t.proc) (Task.core task) ~addr data;
      Libmpk.mpk_end mpk task ~vkey
  | Protected, None -> assert false);
  t.secret_addr <- addr;
  t.secret_len <- len;
  addr

let store t task (kp : Rsa.keypair) =
  let addr = store_bytes t task (serialize_secret kp.Rsa.secret) in
  t.pub <- Some kp.Rsa.public;
  addr

let store_opaque t task data = store_bytes t task data

let with_secret t task f =
  let read () =
    Mmu.read_bytes (Proc.mmu t.proc) (Task.core task) ~addr:t.secret_addr ~len:t.secret_len
  in
  match t.mode, t.mpk with
  | Insecure, _ -> f (deserialize_secret (read ()))
  | Protected, Some mpk ->
      Libmpk.mpk_begin mpk task ~vkey ~prot:Perm.r;
      let data = read () in
      Libmpk.mpk_end mpk task ~vkey;
      f (deserialize_secret data)
  | Protected, None -> assert false

let public t =
  match t.pub with Some p -> p | None -> failwith "Keystore.public: no key stored"

let secret_region t = t.secret_addr, t.secret_len

let alloc_request_buffer t task ~len =
  match t.mode, t.mpk with
  | Insecure, _ -> insecure_alloc t len
  | Protected, Some mpk ->
      let group =
        match Libmpk.find_group mpk vkey with
        | Some g -> g
        | None -> failwith "Keystore: store a key first"
      in
      if len <= page && t.adjacent_free then begin
        (* Place the buffer in the guard page directly below the protected
           group, so an overflow walks straight into protected pages — the
           Heartbleed layout. *)
        t.adjacent_free <- false;
        Syscall.mmap t.proc task ~at:(group.Libmpk.Group.base - page) ~len ~prot:Perm.rw ()
      end
      else Syscall.mmap t.proc task ~len ~prot:Perm.rw ()
  | Protected, None -> assert false

let attacker_read t task ~addr ~len =
  Mmu.read_bytes (Proc.mmu t.proc) (Task.core task) ~addr ~len
