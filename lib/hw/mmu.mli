(** Memory accesses with MPK semantics (paper Fig 1).

    A data access is allowed iff the page permission *and* the PKRU rights
    for the page's key both allow it. An instruction fetch checks only the
    page's execute permission — PKRU is not consulted, which is what makes
    execute-only memory possible. *)

type access = Read | Write | Fetch

type cause =
  | Not_present  (** no translation *)
  | Page_perm  (** page permission bits deny the access *)
  | Pkey_denied  (** PKRU rights for the page's key deny the access *)
  | No_memory  (** demand paging found no free physical frame *)

type fault = { addr : int; access : access; cause : cause }

exception Fault of fault

val access_to_string : access -> string
val cause_to_string : cause -> string
val fault_to_string : fault -> string

type t

val create : Page_table.t -> Physmem.t -> t

val page_table : t -> Page_table.t

(** The kernel's page-fault handler: called on a not-present translation
    with the faulting CPU (when the access came from user code; [None]
    for privileged copies). Returning [true] means the fault was resolved
    (demand paging) and the access retries; [false] delivers the fault.
    At most one handler; installed by the kernel's [Mm]. *)
val set_fault_handler : t -> (Cpu.t option -> fault -> bool) -> unit

(** The kernel's fault {e sink}: called with every unresolved fault raised
    by user-mode code (the faulting CPU is known), before [Fault] would
    escape. The kernel uses it to deliver a POSIX-shaped signal to the
    task on that CPU — the sink is expected to raise (signal handler
    escape or default-kill); if it returns, the raw [Fault] is raised as
    the bare-hardware fallback. Privileged accesses (kernel copies)
    never reach the sink. At most one; installed by [Proc]. *)
val set_fault_sink : t -> (Cpu.t -> fault -> unit) -> unit

(** [check t cpu ~addr ~access] translates and permission-checks one
    address, charging TLB/walk cycles; returns the PTE or raises [Fault]. *)
val check : t -> Cpu.t -> addr:int -> access:access -> Pte.t

(** Checked single-byte data access. *)
val read_byte : t -> Cpu.t -> addr:int -> char

val write_byte : t -> Cpu.t -> addr:int -> char -> unit

(** Checked multi-byte access; may cross page boundaries. *)
val read_bytes : t -> Cpu.t -> addr:int -> len:int -> bytes

val write_bytes : t -> Cpu.t -> addr:int -> bytes -> unit

(** Checked 64-bit little-endian data access. *)
val read_int64 : t -> Cpu.t -> addr:int -> int64

val write_int64 : t -> Cpu.t -> addr:int -> int64 -> unit

(** [fetch t cpu ~addr ~len] models instruction fetch of [len] bytes. *)
val fetch : t -> Cpu.t -> addr:int -> len:int -> bytes

(** Privileged access: the kernel bypasses PKRU (it still requires a
    translation to exist). Used for kernel-mediated metadata updates. *)
val kernel_write_bytes : t -> addr:int -> bytes -> unit

val kernel_read_bytes : t -> addr:int -> len:int -> bytes
