(** A set-associative TLB whose entries carry the page's protection key, as
    on MPK hardware (permission and pkey checks are served from the TLB on
    a hit; [mprotect]/[pkey_mprotect] must therefore invalidate). *)

type t

type entry = { vpn : int; pte : Pte.t }

(** [create ~sets ~ways] — capacity is [sets * ways], LRU within a set. *)
val create : ?sets:int -> ?ways:int -> unit -> t

(** [lookup t ~vpn] is the cached translation, bumping LRU on hit. *)
val lookup : t -> vpn:int -> Pte.t option

val insert : t -> vpn:int -> Pte.t -> unit

val flush_all : t -> unit
val flush_page : t -> vpn:int -> unit

(** [fold t f init] over every live entry, in no particular order. Purely
    observational: no LRU bump, no stats — safe for auditors that must
    not perturb the state they inspect. *)
val fold : t -> (entry -> 'a -> 'a) -> 'a -> 'a

(** All live entries ([fold] as a list). *)
val entries : t -> entry list

val hits : t -> int
val misses : t -> int
val flushes : t -> int
val reset_stats : t -> unit
