type entry = { vpn : int; pte : Pte.t }

type slot = { mutable e : entry option; mutable stamp : int }

type t = {
  sets : int;
  ways : int;
  slots : slot array array;  (* [set].[way] *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable flushes : int;
}

let create ?(sets = 256) ?(ways = 6) () =
  if sets <= 0 || ways <= 0 then invalid_arg "Tlb.create";
  {
    sets;
    ways;
    slots = Array.init sets (fun _ -> Array.init ways (fun _ -> { e = None; stamp = 0 }));
    clock = 0;
    hits = 0;
    misses = 0;
    flushes = 0;
  }

let set_of t vpn = vpn land (t.sets - 1)

let lookup t ~vpn =
  let row = t.slots.(set_of t vpn) in
  let rec scan i =
    if i >= t.ways then begin
      t.misses <- t.misses + 1;
      None
    end
    else
      match row.(i).e with
      | Some e when e.vpn = vpn ->
          t.clock <- t.clock + 1;
          row.(i).stamp <- t.clock;
          t.hits <- t.hits + 1;
          Some e.pte
      | _ -> scan (i + 1)
  in
  scan 0

let insert t ~vpn pte =
  let row = t.slots.(set_of t vpn) in
  (* Prefer the same vpn (update), then an empty way, then LRU victim. *)
  let victim = ref 0 in
  let found = ref false in
  (try
     for i = 0 to t.ways - 1 do
       match row.(i).e with
       | Some e when e.vpn = vpn ->
           victim := i;
           found := true;
           raise Exit
       | _ -> ()
     done;
     for i = 0 to t.ways - 1 do
       if row.(i).e = None then begin
         victim := i;
         found := true;
         raise Exit
       end
     done
   with Exit -> ());
  if not !found then begin
    let best = ref 0 in
    for i = 1 to t.ways - 1 do
      if row.(i).stamp < row.(!best).stamp then best := i
    done;
    victim := !best
  end;
  t.clock <- t.clock + 1;
  row.(!victim).e <- Some { vpn; pte };
  row.(!victim).stamp <- t.clock

let flush_all t =
  Array.iter (fun row -> Array.iter (fun s -> s.e <- None) row) t.slots;
  t.flushes <- t.flushes + 1

let flush_page t ~vpn =
  let row = t.slots.(set_of t vpn) in
  Array.iter
    (fun s -> match s.e with Some e when e.vpn = vpn -> s.e <- None | _ -> ())
    row;
  t.flushes <- t.flushes + 1

let fold t f init =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc s -> match s.e with Some e -> f e acc | None -> acc)
        acc row)
    init t.slots

let entries t = List.rev (fold t (fun e acc -> e :: acc) [])

let hits t = t.hits
let misses t = t.misses
let flushes t = t.flushes

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.flushes <- 0
