let page_size = 4096
let page_shift = 12

(* Fault injection: simulate physical-frame exhaustion (ENOMEM upstream). *)
let fp_alloc_frame = "physmem.alloc_frame"
let () = Mpk_faultinj.declare fp_alloc_frame

type frame = int

type t = {
  total : int;
  backing : (int, bytes) Hashtbl.t;  (* frame -> storage, lazily allocated *)
  refs : (int, int) Hashtbl.t;  (* frame -> mapping count *)
  mutable free_list : int list;
  mutable next_fresh : int;
  mutable in_use : int;
}

let create ~frames =
  if frames <= 0 then invalid_arg "Physmem.create: frames must be positive";
  {
    total = frames;
    backing = Hashtbl.create 1024;
    refs = Hashtbl.create 1024;
    free_list = [];
    next_fresh = 0;
    in_use = 0;
  }

let total_frames t = t.total
let frames_in_use t = t.in_use

let alloc_frame t =
  if Mpk_faultinj.fire fp_alloc_frame then raise Out_of_memory;
  let frame =
    match t.free_list with
    | f :: rest ->
        t.free_list <- rest;
        (* Frames are zeroed on reuse; remove stale backing. *)
        Hashtbl.remove t.backing f;
        f
    | [] ->
        if t.next_fresh >= t.total then raise Out_of_memory;
        let f = t.next_fresh in
        t.next_fresh <- t.next_fresh + 1;
        f
  in
  t.in_use <- t.in_use + 1;
  Hashtbl.replace t.refs frame 1;
  frame

let refcount t f = Option.value ~default:0 (Hashtbl.find_opt t.refs f)

let ref_frame t f =
  match Hashtbl.find_opt t.refs f with
  | Some n -> Hashtbl.replace t.refs f (n + 1)
  | None -> invalid_arg "Physmem.ref_frame: frame not allocated"

let free_frame t f =
  if f < 0 || f >= t.next_fresh then invalid_arg "Physmem.free_frame: bad frame";
  match Hashtbl.find_opt t.refs f with
  | None -> invalid_arg "Physmem.free_frame: frame not allocated"
  | Some n when n > 1 -> Hashtbl.replace t.refs f (n - 1)
  | Some _ ->
      Hashtbl.remove t.refs f;
      Hashtbl.remove t.backing f;
      t.free_list <- f :: t.free_list;
      t.in_use <- t.in_use - 1

let frame_to_int f = f

let frame_of_int t f =
  if f < 0 || f >= t.total then invalid_arg "Physmem.frame_of_int: out of range";
  f

let storage t f =
  match Hashtbl.find_opt t.backing f with
  | Some b -> b
  | None ->
      let b = Bytes.make page_size '\000' in
      Hashtbl.replace t.backing f b;
      b

let check_off off len =
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Physmem: offset out of frame bounds"

let read_byte t f off =
  check_off off 1;
  match Hashtbl.find_opt t.backing f with
  | None -> '\000'
  | Some b -> Bytes.get b off

let write_byte t f off c =
  check_off off 1;
  Bytes.set (storage t f) off c

let read_bytes t f off len =
  check_off off len;
  match Hashtbl.find_opt t.backing f with
  | None -> Bytes.make len '\000'
  | Some b -> Bytes.sub b off len

let write_bytes t f off src src_off len =
  check_off off len;
  Bytes.blit src src_off (storage t f) off len

let read_int64 t f off =
  check_off off 8;
  match Hashtbl.find_opt t.backing f with
  | None -> 0L
  | Some b -> Bytes.get_int64_le b off

let write_int64 t f off v =
  check_off off 8;
  Bytes.set_int64_le (storage t f) off v
