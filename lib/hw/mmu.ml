type access = Read | Write | Fetch

type cause = Not_present | Page_perm | Pkey_denied | No_memory

type fault = { addr : int; access : access; cause : cause }

exception Fault of fault

let access_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Fetch -> "fetch"

let cause_to_string = function
  | Not_present -> "not-present"
  | Page_perm -> "page-permission"
  | Pkey_denied -> "pkey-denied"
  | No_memory -> "out-of-frames"

let fault_to_string f =
  Printf.sprintf "fault: %s at 0x%x (%s)" (access_to_string f.access) f.addr
    (cause_to_string f.cause)

type t = {
  table : Page_table.t;
  mem : Physmem.t;
  mutable fault_handler : (Cpu.t option -> fault -> bool) option;
  mutable fault_sink : (Cpu.t -> fault -> unit) option;
}

let create table mem = { table; mem; fault_handler = None; fault_sink = None }

let page_table t = t.table

let set_fault_handler t h = t.fault_handler <- Some h
let set_fault_sink t s = t.fault_sink <- Some s

(* An unresolved fault from user code traps to the kernel's sink (signal
   delivery) when one is installed; the sink normally raises. [Fault] is
   the bare-hardware fallback: no kernel attached, or a privileged access
   (no faulting CPU context). *)
let user_fault t cpu fault =
  (match cpu, t.fault_sink with
  | Some cpu, Some sink -> sink cpu fault
  | _ -> ());
  raise (Fault fault)

(* Not-present faults get one shot at the kernel's demand-paging handler
   before being delivered. The handler may itself refuse with a [Fault]
   (e.g. frame exhaustion becomes [No_memory]); that refusal is delivered
   in place of the original fault. *)
let resolve_or_fault t cpu fault =
  match fault.cause, t.fault_handler with
  | Not_present, Some handler -> (
      match handler cpu fault with
      | true -> ()
      | false -> user_fault t cpu fault
      | exception Fault refusal -> user_fault t cpu refusal)
  | _ -> user_fault t cpu fault

let translate t cpu ~addr =
  let vpn = Page_table.vpn_of_addr addr in
  let costs = Cpu.costs cpu in
  match Tlb.lookup (Cpu.tlb cpu) ~vpn with
  | Some pte ->
      Cpu.charge ~label:"tlb_hit" cpu costs.tlb_hit;
      pte
  | None ->
      Cpu.charge ~label:"page_walk" cpu costs.page_walk;
      if Mpk_trace.Tracer.on () then Cpu.emit cpu (Mpk_trace.Event.Tlb_miss { vpn });
      let pte = Page_table.get t.table ~vpn in
      if Pte.is_present pte then begin
        Tlb.insert (Cpu.tlb cpu) ~vpn pte;
        if Mpk_trace.Tracer.on () then
          Cpu.emit cpu
            (Mpk_trace.Event.Tlb_fill { vpn; pkey = Pkey.to_int (Pte.pkey pte) })
      end;
      pte

let check t cpu ~addr ~access =
  let pte =
    let first = translate t cpu ~addr in
    if Pte.is_present first then first
    else begin
      resolve_or_fault t (Some cpu) { addr; access; cause = Not_present };
      let retried = translate t cpu ~addr in
      if Pte.is_present retried then retried
      else user_fault t (Some cpu) { addr; access; cause = Not_present }
    end
  in
  let perm = Pte.perm pte in
  let page_ok =
    match access with
    | Read -> perm.Perm.read
    | Write -> perm.Perm.write
    | Fetch -> perm.Perm.exec
  in
  if not page_ok then user_fault t (Some cpu) { addr; access; cause = Page_perm };
  (match access with
  | Fetch -> ()  (* instruction fetch is independent of PKRU *)
  | Read | Write ->
      let rights = Pkru.rights (Cpu.pkru cpu) (Pte.pkey pte) in
      if not (Pkru.allows rights ~write:(access = Write)) then
        user_fault t (Some cpu) { addr; access; cause = Pkey_denied });
  Cpu.charge ~label:"mem_access" cpu (Cpu.costs cpu).mem_access;
  pte

let split_pages ~addr ~len f =
  (* Apply [f pte_addr page_off chunk_off chunk_len] per page touched. *)
  let rec go addr off remaining =
    if remaining > 0 then begin
      let page_off = addr land (Physmem.page_size - 1) in
      let chunk = min remaining (Physmem.page_size - page_off) in
      f addr page_off off chunk;
      go (addr + chunk) (off + chunk) (remaining - chunk)
    end
  in
  go addr 0 len

let read_byte t cpu ~addr =
  let pte = check t cpu ~addr ~access:Read in
  Physmem.read_byte t.mem (Pte.frame pte) (addr land (Physmem.page_size - 1))

let write_byte t cpu ~addr c =
  let pte = check t cpu ~addr ~access:Write in
  Physmem.write_byte t.mem (Pte.frame pte) (addr land (Physmem.page_size - 1)) c

let read_bytes t cpu ~addr ~len =
  if len < 0 then invalid_arg "Mmu.read_bytes: negative length";
  let out = Bytes.create len in
  split_pages ~addr ~len (fun page_addr page_off out_off chunk ->
      let pte = check t cpu ~addr:page_addr ~access:Read in
      let data = Physmem.read_bytes t.mem (Pte.frame pte) page_off chunk in
      Bytes.blit data 0 out out_off chunk);
  out

let write_bytes t cpu ~addr src =
  let len = Bytes.length src in
  split_pages ~addr ~len (fun page_addr page_off src_off chunk ->
      let pte = check t cpu ~addr:page_addr ~access:Write in
      Physmem.write_bytes t.mem (Pte.frame pte) page_off src src_off chunk)

let read_int64 t cpu ~addr =
  let b = read_bytes t cpu ~addr ~len:8 in
  Bytes.get_int64_le b 0

let write_int64 t cpu ~addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write_bytes t cpu ~addr b

let fetch t cpu ~addr ~len =
  if len < 0 then invalid_arg "Mmu.fetch: negative length";
  let out = Bytes.create len in
  split_pages ~addr ~len (fun page_addr page_off out_off chunk ->
      let pte = check t cpu ~addr:page_addr ~access:Fetch in
      let data = Physmem.read_bytes t.mem (Pte.frame pte) page_off chunk in
      Bytes.blit data 0 out out_off chunk);
  out

let kernel_pte t ~addr ~access =
  let vpn = Page_table.vpn_of_addr addr in
  let pte = Page_table.get t.table ~vpn in
  if Pte.is_present pte then pte
  else begin
    (* privileged copy-to/from-user faults the page in like Linux does *)
    resolve_or_fault t None { addr; access; cause = Not_present };
    let retried = Page_table.get t.table ~vpn in
    if Pte.is_present retried then retried
    else raise (Fault { addr; access; cause = Not_present })
  end

let kernel_write_bytes t ~addr src =
  let len = Bytes.length src in
  split_pages ~addr ~len (fun page_addr page_off src_off chunk ->
      let pte = kernel_pte t ~addr:page_addr ~access:Write in
      Physmem.write_bytes t.mem (Pte.frame pte) page_off src src_off chunk)

let kernel_read_bytes t ~addr ~len =
  if len < 0 then invalid_arg "Mmu.kernel_read_bytes: negative length";
  let out = Bytes.create len in
  split_pages ~addr ~len (fun page_addr page_off out_off chunk ->
      let pte = kernel_pte t ~addr:page_addr ~access:Read in
      let data = Physmem.read_bytes t.mem (Pte.frame pte) page_off chunk in
      Bytes.blit data 0 out out_off chunk);
  out
