(* Four radix levels of 512 entries each. Inner nodes are lazily allocated
   arrays; leaves store raw PTE bits as int64 for fidelity with hardware. *)

let fanout = 512
let level_bits = 9
let levels = 4

type node =
  | Inner of node option array
  | Leaf of int64 array

type t = { root : node option array; mutable mapped : int }

let create () = { root = Array.make fanout None; mapped = 0 }

let vpn_of_addr addr = addr lsr Physmem.page_shift
let addr_of_vpn vpn = vpn lsl Physmem.page_shift

let index vpn level =
  (* level 0 is the root, level 3 holds leaves. *)
  (vpn lsr ((levels - 1 - level) * level_bits)) land (fanout - 1)

let check_vpn vpn =
  if vpn < 0 || vpn lsr (levels * level_bits) <> 0 then
    invalid_arg "Page_table: vpn out of 48-bit range"

let rec find_leaf ~create_missing arr vpn level =
  let i = index vpn level in
  if level = levels - 2 then begin
    match arr.(i) with
    | Some (Leaf leaf) -> Some leaf
    | Some (Inner _) -> assert false
    | None ->
        if not create_missing then None
        else begin
          let leaf = Array.make fanout 0L in
          arr.(i) <- Some (Leaf leaf);
          Some leaf
        end
  end
  else
    match arr.(i) with
    | Some (Inner next) -> find_leaf ~create_missing next vpn (level + 1)
    | Some (Leaf _) -> assert false
    | None ->
        if not create_missing then None
        else begin
          let next = Array.make fanout None in
          arr.(i) <- Some (Inner next);
          find_leaf ~create_missing next vpn (level + 1)
        end

let set t ~vpn pte =
  check_vpn vpn;
  let raw = Pte.to_int64 pte in
  if raw = 0L then begin
    match find_leaf ~create_missing:false t.root vpn 0 with
    | None -> ()
    | Some leaf ->
        let i = index vpn (levels - 1) in
        if leaf.(i) <> 0L then t.mapped <- t.mapped - 1;
        leaf.(i) <- 0L
  end
  else
    match find_leaf ~create_missing:true t.root vpn 0 with
    | None -> assert false
    | Some leaf ->
        let i = index vpn (levels - 1) in
        if leaf.(i) = 0L then t.mapped <- t.mapped + 1;
        leaf.(i) <- raw

let get t ~vpn =
  check_vpn vpn;
  match find_leaf ~create_missing:false t.root vpn 0 with
  | None -> Pte.absent
  | Some leaf -> Pte.of_int64 leaf.(index vpn (levels - 1))

let update t ~vpn f =
  let pte = get t ~vpn in
  if Pte.is_present pte then begin
    set t ~vpn (f pte);
    true
  end
  else false

let update_range t ~vpn ~pages f =
  check_vpn vpn;
  if pages > 0 then check_vpn (vpn + pages - 1);
  let lo = vpn and hi = vpn + pages in  (* [lo, hi) *)
  let touched = ref 0 in
  (* [span] = number of vpns under one slot at this level *)
  let rec walk arr level node_base =
    let span = 1 lsl ((levels - 1 - level) * level_bits) in
    for i = 0 to fanout - 1 do
      let slot_lo = node_base + (i * span) in
      let slot_hi = slot_lo + span in
      if slot_lo < hi && slot_hi > lo then
        match arr.(i) with
        | None -> ()
        | Some (Inner next) -> walk next (level + 1) slot_lo
        | Some (Leaf leaf) ->
            let jlo = max 0 (lo - slot_lo) in
            let jhi = min fanout (hi - slot_lo) in
            for j = jlo to jhi - 1 do
              if leaf.(j) <> 0L then begin
                leaf.(j) <- Pte.to_int64 (f (Pte.of_int64 leaf.(j)));
                incr touched
              end
            done
    done
  in
  (* Leaves appear at level 2 holding the level-3 index, so a Leaf's
     slot spans [fanout] vpns; walk handles that via span at level 2. *)
  walk t.root 0 0;
  !touched

let protect_range t ~vpn ~pages perm =
  let touched = ref 0 in
  for v = vpn to vpn + pages - 1 do
    if update t ~vpn:v (fun pte -> Pte.with_perm pte perm) then incr touched
  done;
  !touched

let set_pkey_range t ~vpn ~pages pkey =
  let touched = ref 0 in
  for v = vpn to vpn + pages - 1 do
    if update t ~vpn:v (fun pte -> Pte.with_pkey pte pkey) then incr touched
  done;
  !touched

let fold t f init =
  let acc = ref init in
  let rec walk arr level prefix =
    for i = 0 to fanout - 1 do
      match arr.(i) with
      | None -> ()
      | Some (Inner next) -> walk next (level + 1) ((prefix lsl level_bits) lor i)
      | Some (Leaf leaf) ->
          let base = ((prefix lsl level_bits) lor i) lsl level_bits in
          for j = 0 to fanout - 1 do
            if leaf.(j) <> 0L then acc := f (base lor j) (Pte.of_int64 leaf.(j)) !acc
          done
    done
  in
  walk t.root 0 0;
  !acc

let count_with_pkey t pkey =
  fold t (fun _ pte acc -> if Pkey.equal (Pte.pkey pte) pkey then acc + 1 else acc) 0

let mapped_pages t = t.mapped
