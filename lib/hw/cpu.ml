type t = {
  id : int;
  costs : Costs.t;
  tlb : Tlb.t;
  mutable pkru : Pkru.t;
  mutable cycles : float;
  mutable refill_left : int;  (* instructions still paying the drain *)
}

let create ?(costs = Costs.default) ~id () =
  { id; costs; tlb = Tlb.create (); pkru = Pkru.init; cycles = 0.0; refill_left = 0 }

let id t = t.id
let costs t = t.costs
let tlb t = t.tlb
let cycles t = t.cycles

(* Fault injection: a charged event is the finest-grained point at which
   the scheduler may preempt the running task (the kernel installs the
   actual action via [Mpk_faultinj.set_preempt_action]). *)
let fp_preempt = "sched.preempt"
let () = Mpk_faultinj.declare fp_preempt

(* Cycles ever charged on any core, for the attribution exactness check:
   this accumulator and [Prof.total_recorded] perform the same float
   additions in the same order when both are reset together, so `mpkctl
   profile` can require bit-identical totals. *)
let total_ever = ref 0.0

let total_charged () = !total_ever
let reset_total_charged () = total_ever := 0.0

(* Planted slowdown: extra cycles injected on one charge label, used by
   the bench gate's self-test (`mpkctl bench diff --plant`) to prove a
   real regression would be caught and correctly attributed. The extra
   cycles flow through the normal accounting below — core clock,
   [total_ever], profiler — so the attribution exactness check still
   holds under a plant. *)
let planted : (string * float) option ref = ref None

let set_plant_slowdown p =
  (match p with
  | Some (_, extra) when not (Float.is_finite extra) || extra < 0.0 ->
      invalid_arg "set_plant_slowdown: extra cycles must be finite and >= 0"
  | Some _ | None -> ());
  planted := p

let plant_slowdown () = !planted

let charge ?label t c =
  let c =
    match !planted, label with
    | Some (pl, extra), Some l when String.equal l pl -> c +. extra
    | _ -> c
  in
  t.cycles <- t.cycles +. c;
  total_ever := !total_ever +. c;
  if Mpk_trace.Prof.on () then Mpk_trace.Prof.record ?label c;
  if Mpk_faultinj.fire fp_preempt then Mpk_faultinj.preempt t.id

let measure t f =
  let before = t.cycles in
  let result = f () in
  result, t.cycles -. before

(* Tracer shims: the core's cycle counter is the event clock. *)
let emit t ev = Mpk_trace.Tracer.emit ~core:t.id ~ts:t.cycles ev

let span t name f =
  Mpk_trace.Tracer.with_span ~core:t.id ~clock:(fun () -> t.cycles) name f

let pkru t = t.pkru
let set_pkru_direct t v = t.pkru <- v

let wrpkru t v =
  t.pkru <- v;
  charge ~label:"wrpkru" t t.costs.wrpkru;
  t.refill_left <- t.costs.pipeline_refill_window;
  if Mpk_trace.Tracer.on () then
    emit t (Mpk_trace.Event.Wrpkru { pkru = Pkru.to_int v })

let rdpkru t =
  charge ~label:"rdpkru" t t.costs.rdpkru;
  if Mpk_trace.Tracer.on () then
    emit t (Mpk_trace.Event.Rdpkru { pkru = Pkru.to_int t.pkru });
  t.pkru

let exec_adds t n =
  let serial = min n t.refill_left in
  t.refill_left <- t.refill_left - serial;
  let pipelined = n - serial in
  charge ~label:"pipeline_refill" t
    ((float_of_int serial *. (t.costs.add_pipelined +. t.costs.wrpkru_drain))
    +. (float_of_int pipelined *. t.costs.add_pipelined))

let exec_reg_move t = charge ~label:"reg_move" t t.costs.reg_move
