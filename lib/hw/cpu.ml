type t = {
  id : int;
  costs : Costs.t;
  tlb : Tlb.t;
  mutable pkru : Pkru.t;
  mutable cycles : float;
  mutable refill_left : int;  (* instructions still paying the drain *)
}

let create ?(costs = Costs.default) ~id () =
  { id; costs; tlb = Tlb.create (); pkru = Pkru.init; cycles = 0.0; refill_left = 0 }

let id t = t.id
let costs t = t.costs
let tlb t = t.tlb
let cycles t = t.cycles

(* Fault injection: a charged event is the finest-grained point at which
   the scheduler may preempt the running task (the kernel installs the
   actual action via [Mpk_faultinj.set_preempt_action]). *)
let fp_preempt = "sched.preempt"
let () = Mpk_faultinj.declare fp_preempt

let charge t c =
  t.cycles <- t.cycles +. c;
  if Mpk_faultinj.fire fp_preempt then Mpk_faultinj.preempt t.id

let measure t f =
  let before = t.cycles in
  let result = f () in
  result, t.cycles -. before

let pkru t = t.pkru
let set_pkru_direct t v = t.pkru <- v

let wrpkru t v =
  t.pkru <- v;
  charge t t.costs.wrpkru;
  t.refill_left <- t.costs.pipeline_refill_window

let rdpkru t =
  charge t t.costs.rdpkru;
  t.pkru

let exec_adds t n =
  let serial = min n t.refill_left in
  t.refill_left <- t.refill_left - serial;
  let pipelined = n - serial in
  charge t
    ((float_of_int serial *. (t.costs.add_pipelined +. t.costs.wrpkru_drain))
    +. (float_of_int pipelined *. t.costs.add_pipelined))

let exec_reg_move t = charge t t.costs.reg_move
