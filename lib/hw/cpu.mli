(** A logical core (hyperthread): PKRU register, TLB, cycle counter, and a
    small pipeline model capturing WRPKRU's serializing behaviour. *)

type t

val create : ?costs:Costs.t -> id:int -> unit -> t

val id : t -> int
val costs : t -> Costs.t
val tlb : t -> Tlb.t

(** Elapsed simulated cycles on this core. *)
val cycles : t -> float

(** [charge ?label t c] advances the core's clock by [c] cycles. When
    profiling is enabled ({!Mpk_trace.Prof}), the charge is attributed
    to [label] under the currently-open spans; unlabelled charges show
    up as [(unattributed)] rather than vanishing. *)
val charge : ?label:string -> t -> float -> unit

(** Cycles ever charged across {e all} cores since the last
    {!reset_total_charged}. Advanced by the identical float-addition
    sequence as [Prof.total_recorded] when both are reset together,
    making the attribution exactness check bit-exact. *)
val total_charged : unit -> float

val reset_total_charged : unit -> unit

(** [set_plant_slowdown (Some (label, extra))] arms an artificial
    slowdown: every subsequent charge carrying exactly [label] costs
    [extra] additional cycles, on any core. The surcharge travels the
    normal accounting path (core clock, {!total_charged}, profiler), so
    cycle attribution stays exact — which is the point: the bench gate's
    planted-regression self-test must look like a genuine hot-path
    slowdown, not a bookkeeping anomaly. [None] disarms. Raises
    [Invalid_argument] on a negative or non-finite surcharge. *)
val set_plant_slowdown : (string * float) option -> unit

val plant_slowdown : unit -> (string * float) option

(** [measure t f] is [f ()] together with the cycles it consumed. *)
val measure : t -> (unit -> 'a) -> 'a * float

(** [emit t ev] emits a trace event stamped with this core's id and
    cycle clock. No-op (one branch) when tracing is disabled, but
    callers on hot paths should still guard with [Mpk_trace.Tracer.on]
    to avoid constructing the event payload. *)
val emit : t -> Mpk_trace.Event.ev -> unit

(** [span t name f] runs [f] inside a named tracing/attribution span
    clocked by this core (see {!Mpk_trace.Tracer.with_span}). *)
val span : t -> string -> (unit -> 'a) -> 'a

(* PKRU access. *)

val pkru : t -> Pkru.t

(** [set_pkru_direct t v] updates PKRU without charging cycles — used by
    the kernel when restoring register state on a context switch. *)
val set_pkru_direct : t -> Pkru.t -> unit

(** WRPKRU: serializing write — charges latency and stalls the pipeline. *)
val wrpkru : t -> Pkru.t -> unit

(** RDPKRU: cheap read. *)
val rdpkru : t -> Pkru.t

(* Pipeline model for Fig 2. *)

(** [exec_adds t n] models [n] dependent-free ADD instructions, paying the
    post-serialization refill penalty when applicable. *)
val exec_adds : t -> int -> unit

(** Plain register move (Table 1 reference row). *)
val exec_reg_move : t -> unit
