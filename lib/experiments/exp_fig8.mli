(** Paper Fig 8: latency of libmpk's key cache under varying hit rates,
    eviction rates and thread counts, with the mprotect reference line.
    [mpk_mprotect] is invoked on one 4 KB page. *)

type cell = {
  hit_rate : int;  (** percent *)
  evict_rate : int;  (** percent *)
  threads : int;
  cycles : float;
}

(** One grid cell. The seeds default to the figure's fixed values;
    `mpkctl bench` varies [wl_seed] (the hit/miss choice sequence) and
    [mpk_seed] (libmpk's internal PRNG) across trials to put a real
    noise distribution behind each metric. *)
val run_cell :
  ?mpk_seed:int64 ->
  ?wl_seed:int64 ->
  hit_rate:int ->
  evict_rate:int ->
  threads:int ->
  unit ->
  cell

val grid : unit -> cell list

(** mprotect latency on the same page with the given thread count. *)
val mprotect_reference : threads:int -> float

val render : unit -> string
