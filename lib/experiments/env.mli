(** Shared plumbing for the paper-reproduction experiments: fresh
    simulated machines, cycle→time conversion (the paper's 2.4 GHz Xeon
    Gold 5115), and repetition helpers. *)

open Mpk_kernel

(** Simulated clock frequency used for cycle→seconds conversions. *)
val ghz : float

val cycles_to_us : float -> float

type t = { proc : Proc.t; tasks : Task.t array }

(** [make ~threads ()] — a fresh machine with [threads] tasks on distinct
    cores (plus headroom). *)
val make : ?threads:int -> ?mem_mib:int -> unit -> t

val main : t -> Task.t

(** [span task name f] — run [f] inside a named tracing/profiling span on
    [task]'s core ({!Mpk_hw.Cpu.span}). Free when observability is off. *)
val span : Task.t -> string -> (unit -> 'a) -> 'a

(** [mean_cycles ~reps task f] — mean cycles of [f] over [reps] calls
    measured on [task]'s core. *)
val mean_cycles : reps:int -> Task.t -> (int -> unit) -> float
