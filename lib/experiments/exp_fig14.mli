(** Paper Fig 14: Memcached throughput and unhandled connections at
    increasing connection rates, for the original server and the three
    protected variants (mpk_begin / mpk_mprotect / mprotect), with ~1 GiB
    of slab memory resident. *)

type point = {
  mode : Mpk_kvstore.Server.mode;
  conn_rate : int;
  data_mb_s : float;
  unhandled : int;
}

(** [points ()] sweeps the figure's full grid. `mpkctl bench` passes a
    smaller [slab_mib], a single [conn_rates] entry, and a per-trial
    workload [seed] to turn one cell of the figure into a repeatable
    noisy metric. *)
val points :
  ?slab_mib:int -> ?seed:int64 -> ?conn_rates:int list -> unit -> point list

val run_mode :
  ?slab_mib:int ->
  ?seed:int64 ->
  ?conn_rates:int list ->
  Mpk_kvstore.Server.mode ->
  point list

val render : ?slab_mib:int -> unit -> string
