open Mpk_kernel
open Mpk_hw

type row = {
  application : string;
  protection : string;
  protected_data : string;
  pkeys : string;
  vkeys : string;
}

let openssl_row () =
  let env = Env.make () in
  let main = Env.main env in
  let mpk = Libmpk.init ~evict_rate:1.0 env.Env.proc main in
  let ks = Mpk_secstore.Keystore.create ~mode:Mpk_secstore.Keystore.Protected env.Env.proc main ~mpk () in
  ignore
    (Mpk_secstore.Keystore.store ks main
       (Mpk_crypto.Rsa.generate (Mpk_util.Prng.create ~seed:3L) ~bits:96));
  {
    application = "OpenSSL";
    protection = "Isolation";
    protected_data = "Private key";
    pkeys = string_of_int (Libmpk.Key_cache.in_use (Libmpk.cache mpk));
    vkeys = string_of_int (Libmpk.group_count mpk);
  }

let jit_row strategy label =
  let env = Env.make ~mem_mib:512 () in
  let main = Env.main env in
  let mpk = Libmpk.init ~evict_rate:1.0 env.Env.proc main in
  let engine =
    Mpk_jit.Engine.create Mpk_jit.Engine.Chakracore strategy env.Env.proc main ~mpk
      ~cache_pages:24 ()
  in
  (* ~3.9KB functions: one page (hence, for key/page, one vkey) each *)
  for i = 0 to 19 do
    ignore (Mpk_jit.Engine.compile engine main ~ops:60 ~seed:i ~pad_to:3900 ())
  done;
  let vkeys = Libmpk.group_count mpk in
  {
    application = Printf.sprintf "JIT (%s)" label;
    protection = "W^X";
    protected_data = "Code cache";
    pkeys = string_of_int (min 15 (Libmpk.Key_cache.in_use (Libmpk.cache mpk)));
    vkeys = (if vkeys > 15 then Printf.sprintf "%d (>15)" vkeys else string_of_int vkeys);
  }

let memcached_row () =
  let srv = Mpk_kvstore.Server.create ~mode:Mpk_kvstore.Server.Domain ~workers:2 ~slab_mib:8 ~buckets:64 () in
  ignore (Mpk_kvstore.Server.set srv ~worker:0 ~key:"k" ~value:(Bytes.of_string "v"));
  ignore (Proc.tasks (Mpk_kvstore.Server.proc srv) : Task.t list);
  ignore (Machine.core_count (Proc.machine (Mpk_kvstore.Server.proc srv)));
  {
    application = "Memcached";
    protection = "Isolation";
    protected_data = "Slab, hashtable";
    pkeys = "2";
    vkeys = "2";
  }

let rows () =
  [
    openssl_row ();
    jit_row Mpk_jit.Wx.Key_per_page "key/page";
    jit_row Mpk_jit.Wx.Key_per_process "key/process";
    memcached_row ();
  ]

let render () =
  "Table 3: libmpk applications (counts observed from the live configurations)\n"
  ^ Mpk_util.Table.render
      ~aligns:[ Mpk_util.Table.Left; Mpk_util.Table.Left; Mpk_util.Table.Left; Right; Right ]
      ~header:[ "Application"; "Protection"; "Protected data"; "#pkeys"; "#vkeys" ]
      (List.map
         (fun r -> [ r.application; r.protection; r.protected_data; r.pkeys; r.vkeys ])
         (rows ()))
