open Mpk_hw
open Mpk_kernel

type cell = { hit_rate : int; evict_rate : int; threads : int; cycles : float }

let page = Physmem.page_size
let total_groups = 64
let ops = 200

(* A vkey currently mapped to a hardware key (guaranteed hit) and one that
   is not (guaranteed miss), chosen via the cache's own state. *)
let pick_hit mpk = match Libmpk.Key_cache.dump (Libmpk.cache mpk) with
  | (vkey, _, _) :: _ -> vkey  (* LRU entry: also exercises LRU bumping *)
  | [] -> invalid_arg "pick_hit: cache empty"

let pick_miss mpk next =
  let cached = Libmpk.Key_cache.dump (Libmpk.cache mpk) in
  let in_cache v = List.exists (fun (v', _, _) -> v = v') cached in
  let rec scan v = if in_cache v then scan ((v mod total_groups) + 1) else v in
  scan ((next mod total_groups) + 1)

let flip i = if i land 1 = 0 then Perm.r else Perm.rw

let run_cell ?(mpk_seed = 0x816L) ?(wl_seed = 0x88L) ~hit_rate ~evict_rate ~threads () =
  let env = Env.make ~threads () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let mpk =
    Libmpk.init ~evict_rate:(float_of_int evict_rate /. 100.0) ~seed:mpk_seed proc task
  in
  for v = 1 to total_groups do
    ignore (Libmpk.mpk_mmap mpk task ~vkey:v ~len:page ~prot:Perm.rw)
  done;
  (* warm: fill all 15 entries *)
  for v = 1 to 15 do
    Libmpk.mpk_mprotect mpk task ~vkey:v ~prot:Perm.rw
  done;
  let prng = Mpk_util.Prng.create ~seed:wl_seed in
  let cycles =
    Env.mean_cycles ~reps:ops task (fun i ->
        let vkey =
          if Mpk_util.Prng.int prng 100 < hit_rate then pick_hit mpk
          else pick_miss mpk (Mpk_util.Prng.int prng total_groups)
        in
        Libmpk.mpk_mprotect mpk task ~vkey ~prot:(flip i))
  in
  { hit_rate; evict_rate; threads; cycles }

let hit_rates = [ 0; 25; 50; 75; 100 ]
let evict_rates = [ 25; 50; 100 ]
let thread_counts = [ 1; 4 ]

let grid () =
  List.concat_map
    (fun threads ->
      List.concat_map
        (fun evict_rate ->
          List.map (fun hit_rate -> run_cell ~hit_rate ~evict_rate ~threads ()) hit_rates)
        evict_rates)
    thread_counts

let mprotect_reference ~threads =
  let env = Env.make ~threads () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let addr = Syscall.mmap proc task ~len:page ~prot:Perm.rw () in
  Mm.populate (Proc.mm proc) (Task.core task) ~addr ~len:page;
  Env.mean_cycles ~reps:ops task (fun i ->
      Syscall.mprotect proc task ~addr ~len:page ~prot:(flip i))

let render () =
  let cells = grid () in
  let buf = Buffer.create 1024 in
  List.iter
    (fun threads ->
      let reference = mprotect_reference ~threads in
      Buffer.add_string buf
        (Printf.sprintf
           "Figure 8 (%d thread%s): mpk_mprotect latency (cycles); mprotect ref = %.0f\n"
           threads
           (if threads = 1 then "" else "s")
           reference);
      let header =
        "hit%" :: List.map (fun e -> Printf.sprintf "evict %d%%" e) evict_rates
        @ [ "vs ref (e=100%)" ]
      in
      let rows =
        List.map
          (fun hit_rate ->
            let row_cells =
              List.map
                (fun evict_rate ->
                  (List.find
                     (fun c ->
                       c.hit_rate = hit_rate && c.evict_rate = evict_rate
                       && c.threads = threads)
                     cells)
                    .cycles)
                evict_rates
            in
            let last = List.nth row_cells (List.length row_cells - 1) in
            string_of_int hit_rate
            :: List.map Mpk_util.Table.float_cell row_cells
            @ [ Printf.sprintf "%.2fx" (reference /. last) ])
          hit_rates
      in
      Buffer.add_string buf (Mpk_util.Table.render ~header rows);
      Buffer.add_char buf '\n')
    thread_counts;
  Buffer.contents buf
