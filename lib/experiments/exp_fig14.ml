open Mpk_kvstore

type point = {
  mode : Server.mode;
  conn_rate : int;
  data_mb_s : float;
  unhandled : int;
}

let conn_rates = [ 250; 500; 750; 1000 ]
let modes = [ Server.Baseline; Server.Domain; Server.Sync; Server.Mprotect_sys ]
let duration_s = 0.05
let working_set = 300

let run_mode ?(slab_mib = 1024) ?seed ?(conn_rates = conn_rates) mode =
  let srv = Server.create ~mode ~workers:4 ~slab_mib ~buckets:4096 () in
  Server.prefill srv ~items:working_set ~value_size:1024;
  Server.populate_slab srv ~mib:slab_mib;
  List.map
    (fun conn_rate ->
      let r = Loadgen.run srv ~conn_rate ~duration_s ~working_set ~value_size:1024 ?seed () in
      { mode; conn_rate; data_mb_s = r.Loadgen.data_mb_s; unhandled = r.Loadgen.unhandled_conns })
    conn_rates

let points ?slab_mib ?seed ?conn_rates () =
  List.concat_map (fun m -> run_mode ?slab_mib ?seed ?conn_rates m) modes

let render ?slab_mib () =
  let pts = points ?slab_mib () in
  let cell mode rate proj =
    match List.find_opt (fun p -> p.mode = mode && p.conn_rate = rate) pts with
    | Some p -> proj p
    | None -> "-"
  in
  let table proj =
    Mpk_util.Table.render
      ~header:("conns/s" :: List.map Server.mode_name modes)
      (List.map
         (fun rate ->
           string_of_int rate :: List.map (fun m -> cell m rate proj) modes)
         conn_rates)
  in
  let ratio =
    let find m = List.find (fun p -> p.mode = m && p.conn_rate = 1000) pts in
    (find Server.Sync).data_mb_s /. Float.max 0.001 (find Server.Mprotect_sys).data_mb_s
  in
  Printf.sprintf
    "Figure 14: Memcached (4 threads, ~1 GiB resident slab)\n\
     Data throughput (MB/s):\n%s\n\
     Unhandled connections:\n%s\n\
     mpk_mprotect vs mprotect at 1000 conns/s: %.1fx (paper: 8.1x)\n"
    (table (fun p -> Mpk_util.Table.float_cell p.data_mb_s))
    (table (fun p -> string_of_int p.unhandled))
    ratio
