open Mpk_hw
open Mpk_kernel

type row = { name : string; cycles : float; paper : float; description : string }

let reps = 1000

let rows () =
  let env = Env.make () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let core = Task.core task in
  let measure f = Env.mean_cycles ~reps task f in
  (* alloc and free measured in alternating batches of all 15 keys *)
  let alloc_only =
    let ks = ref [] in
    let c =
      Env.span task "table1_pkey_alloc" @@ fun () ->
      Env.mean_cycles ~reps:15 task (fun _ ->
          ks := Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write :: !ks)
    in
    List.iter (fun k -> Syscall.pkey_free proc task k) !ks;
    c
  in
  let free_only =
    let ks =
      List.init 15 (fun _ -> Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write)
    in
    Env.span task "table1_pkey_free" @@ fun () ->
    let before = Cpu.cycles core in
    List.iter (fun k -> Syscall.pkey_free proc task k) ks;
    (Cpu.cycles core -. before) /. 15.0
  in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  Mm.populate (Proc.mm proc) core ~addr ~len:4096;
  let k = Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write in
  let flip i = if i land 1 = 0 then Perm.r else Perm.rw in
  let pkey_mprotect =
    Env.span task "table1_pkey_mprotect" @@ fun () ->
    measure (fun i -> Syscall.pkey_mprotect proc task ~addr ~len:4096 ~prot:(flip i) ~pkey:k)
  in
  let mprotect =
    Env.span task "table1_mprotect" @@ fun () ->
    measure (fun i -> Syscall.mprotect proc task ~addr ~len:4096 ~prot:(flip i))
  in
  let rdpkru =
    Env.span task "table1_rdpkru" @@ fun () -> measure (fun _ -> ignore (Cpu.rdpkru core))
  in
  let wrpkru =
    Env.span task "table1_wrpkru" @@ fun () ->
    measure (fun _ -> Cpu.wrpkru core (Cpu.pkru core))
  in
  let reg_move =
    Env.span task "table1_reg_move" @@ fun () -> measure (fun _ -> Cpu.exec_reg_move core)
  in
  [
    { name = "pkey_alloc()"; cycles = alloc_only; paper = 186.3; description = "Allocate a new pkey" };
    { name = "pkey_free()"; cycles = free_only; paper = 137.2; description = "Deallocate a pkey" };
    { name = "pkey_mprotect()"; cycles = pkey_mprotect; paper = 1104.9; description = "Associate a pkey with memory pages" };
    { name = "pkey_get()/RDPKRU"; cycles = rdpkru; paper = 0.5; description = "Get the access right of a pkey" };
    { name = "pkey_set()/WRPKRU"; cycles = wrpkru; paper = 23.3; description = "Update the access right of a pkey" };
    { name = "mprotect() [ref]"; cycles = mprotect; paper = 1094.0; description = "Reference: mprotect on one 4KB page" };
    { name = "MOVQ rbx,rdx [ref]"; cycles = reg_move; paper = 0.0; description = "Reference: register move" };
  ]

let render () =
  let body =
    List.map
      (fun r ->
        [
          r.name;
          Mpk_util.Table.float_cell r.cycles;
          Mpk_util.Table.float_cell r.paper;
          r.description;
        ])
      (rows ())
  in
  "Table 1: Overhead of MPK instructions, system calls and APIs (cycles)\n"
  ^ Mpk_util.Table.render
      ~aligns:[ Mpk_util.Table.Left; Right; Right; Mpk_util.Table.Left ]
      ~header:[ "Name"; "Simulated"; "Paper"; "Description" ]
      body
