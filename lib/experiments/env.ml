open Mpk_hw
open Mpk_kernel

let ghz = 2.4

let cycles_to_us c = c /. (ghz *. 1e3)

type t = { proc : Proc.t; tasks : Task.t array }

let make ?(threads = 1) ?(mem_mib = 2048) () =
  let machine = Machine.create ~cores:(threads + 1) ~mem_mib () in
  let proc = Proc.create machine in
  let tasks = Array.init threads (fun i -> Proc.spawn proc ~core_id:i ()) in
  { proc; tasks }

let main t = t.tasks.(0)

(* Attribution span on the task's core: groups everything [f] charges
   under [name] in the cycle-attribution profile (and the event trace). *)
let span task name f = Cpu.span (Task.core task) name f

let mean_cycles ~reps task f =
  let core = Task.core task in
  let before = Cpu.cycles core in
  for i = 0 to reps - 1 do
    f i
  done;
  (Cpu.cycles core -. before) /. float_of_int reps
