type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = t.mean

let stddev t =
  if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

(* Named [minimum]/[maximum] rather than [min]/[max]: an [open]ed or
   locally-bound Stats would otherwise shadow [Stdlib.min]/[Stdlib.max]
   with single-argument functions, turning `min a b` into a type error
   (or worse, a partial application) far from the open. *)
let minimum t = t.min
let maximum t = t.max
let total t = t.total

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  (* Polymorphic [compare] mis-orders NaN, silently corrupting the rank
     interpolation; degenerate benchmark cells do produce NaN, so reject
     it loudly and sort with the IEEE-aware comparison. *)
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: NaN sample")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let mean_of xs =
  let t = create () in
  Array.iter (add t) xs;
  mean t

let stddev_of xs =
  let t = create () in
  Array.iter (add t) xs;
  stddev t

module Histogram = struct
  type h = {
    lo : float;
    growth : float;
    bounds : float array;  (* bounds.(i) = lo * growth^i, ascending *)
    counts : int array;  (* length bounds + 1; last slot is the overflow bucket *)
    mutable n : int;
    mutable sum : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create ?(lo = 1.0) ?(growth = 2.0) ?(buckets = 32) () =
    if not (lo > 0.0) then invalid_arg "Stats.Histogram.create: lo must be positive";
    if not (growth > 1.0) then invalid_arg "Stats.Histogram.create: growth must exceed 1";
    if buckets < 1 then invalid_arg "Stats.Histogram.create: need at least one bucket";
    {
      lo;
      growth;
      bounds = Array.init buckets (fun i -> lo *. (growth ** float_of_int i));
      counts = Array.make (buckets + 1) 0;
      n = 0;
      sum = 0.0;
      vmin = infinity;
      vmax = neg_infinity;
    }

  (* Smallest i with x <= bounds.(i); the overflow bucket past the last
     bound. Samples at or below [lo] all land in bucket 0 — the buckets
     are fixed at creation, underflow is not tracked separately. *)
  let bucket_index t x =
    let nb = Array.length t.bounds in
    if x <= t.bounds.(0) then 0
    else if x > t.bounds.(nb - 1) then nb
    else begin
      let lo = ref 0 and hi = ref (nb - 1) in
      (* invariant: bounds.(lo) < x <= bounds.(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if x <= t.bounds.(mid) then hi := mid else lo := mid
      done;
      !hi
    end

  let add t x =
    if Float.is_nan x then invalid_arg "Stats.Histogram.add: NaN sample";
    t.counts.(bucket_index t x) <- t.counts.(bucket_index t x) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    if x < t.vmin then t.vmin <- x;
    if x > t.vmax then t.vmax <- x

  let count t = t.n
  let total t = t.sum
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n
  let minimum t = t.vmin
  let maximum t = t.vmax

  let same_shape a b =
    a.lo = b.lo && a.growth = b.growth
    && Array.length a.bounds = Array.length b.bounds

  let merge_into ~into src =
    if not (same_shape into src) then
      invalid_arg "Stats.Histogram.merge_into: bucket layouts differ";
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
    into.n <- into.n + src.n;
    into.sum <- into.sum +. src.sum;
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax

  (* Rank interpolation inside the bucket holding the target rank. The
     result is clamped to the observed extrema, so tiny histograms do not
     report values outside what was ever added. *)
  let percentile t p =
    if t.n = 0 then invalid_arg "Stats.Histogram.percentile: empty histogram";
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = p /. 100.0 *. float_of_int t.n in
    let nb = Array.length t.bounds in
    let rec find b cum =
      if b > nb then nb, cum  (* unreachable: total count = n >= rank *)
      else
        let cum' = cum + t.counts.(b) in
        if float_of_int cum' >= rank && t.counts.(b) > 0 then b, cum else find (b + 1) cum'
    in
    let b, cum_before = find 0 0 in
    let lb = if b = 0 then 0.0 else t.bounds.(b - 1) in
    let ub = if b >= nb then t.vmax else t.bounds.(b) in
    let frac =
      if t.counts.(b) = 0 then 1.0
      else (rank -. float_of_int cum_before) /. float_of_int t.counts.(b)
    in
    let v = lb +. ((ub -. lb) *. (if frac < 0.0 then 0.0 else Float.min frac 1.0)) in
    Float.max t.vmin (Float.min t.vmax v)

  let p50 t = percentile t 50.0
  let p95 t = percentile t 95.0
  let p99 t = percentile t 99.0

  let buckets t =
    Array.init
      (Array.length t.counts)
      (fun i ->
        let ub = if i < Array.length t.bounds then t.bounds.(i) else infinity in
        ub, t.counts.(i))
end
