type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = t.mean

let stddev t =
  if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

let min t = t.min
let max t = t.max
let total t = t.total

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  (* Polymorphic [compare] mis-orders NaN, silently corrupting the rank
     interpolation; degenerate benchmark cells do produce NaN, so reject
     it loudly and sort with the IEEE-aware comparison. *)
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Stats.percentile: NaN sample")
    xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let mean_of xs =
  let t = create () in
  Array.iter (add t) xs;
  mean t

let stddev_of xs =
  let t = create () in
  Array.iter (add t) xs;
  stddev t
