(* Zipfian sampler over ranks 0..n-1 (rank 0 hottest), YCSB-style:
   P(rank = r) proportional to 1 / (r+1)^theta. The CDF is precomputed
   once (O(n)) and each sample is a binary search (O(log n)), driven by
   the caller's deterministic PRNG. theta = 0 degenerates to uniform;
   YCSB's default skew is theta = 0.99. *)

type t = { n : int; cdf : float array }

let create ?(theta = 0.99) ~n () =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) theta);
    cdf.(r) <- !total
  done;
  let norm = !total in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. norm
  done;
  { n; cdf }

let n t = t.n

let sample t prng =
  let u = Prng.float prng in
  (* smallest rank with cdf.(rank) > u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo
