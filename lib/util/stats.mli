(** Small descriptive-statistics helpers used by experiments and benches. *)

(** Online accumulator (Welford) for mean / variance / extrema. *)
type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** Sample standard deviation; 0 when fewer than two samples. *)
val stddev : t -> float

val min : t -> float
val max : t -> float
val total : t -> float

(** [percentile xs p] for [p] in [\[0, 100\]] using linear interpolation.
    Raises [Invalid_argument] on an empty array or when any sample is
    NaN (NaN has no rank; sorting it would silently skew the result). *)
val percentile : float array -> float -> float

val mean_of : float array -> float
val stddev_of : float array -> float
