(** Streaming statistics.

    A Welford online accumulator plus a fixed-bucket log-spaced histogram.
    Both are cheap enough to live inside hot simulator paths (kvstore
    request handling, experiment inner loops). *)

type t
(** Welford online accumulator: O(1) per sample, numerically stable mean
    and variance without retaining samples.

    NaN behaviour: feeding a NaN sample {e poisons} the accumulator —
    [mean], [stddev] and [total] become (and stay) NaN, because NaN
    propagates through the running sums. [minimum]/[maximum] are {e not}
    updated by NaN samples (IEEE comparisons with NaN are false), so
    after a NaN they describe only the non-NaN prefix. [count] keeps
    counting. If NaN is a possible input, reject it before [add]; this
    module deliberately does not hide it. *)

val create : unit -> t

val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val stddev : t -> float
(** Sample standard deviation (Bessel-corrected); [0.0] when [count < 2]. *)

val minimum : t -> float
(** Smallest non-NaN sample; [infinity] when empty. Named [minimum]
    rather than [min] so an [open Stats] cannot shadow [Stdlib.min]. *)

val maximum : t -> float
(** Largest non-NaN sample; [neg_infinity] when empty. See {!minimum}
    for why this is not called [max]. *)

val total : t -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0..100] (clamped), with linear
    interpolation between order statistics. Raises [Invalid_argument] on
    an empty array or any NaN sample (NaN has no rank; sorting it would
    silently skew the result). *)

val mean_of : float array -> float
val stddev_of : float array -> float

(** Fixed-bucket histogram with log-spaced bounds.

    Bucket [i] covers [(lo·growth^(i-1), lo·growth^i]] (bucket 0 also
    absorbs everything [<= lo]); one extra overflow bucket catches
    samples above the last bound. The layout is fixed at [create] time,
    which is what makes {!Histogram.merge_into} and bucket-level export
    (Prometheus [le] bounds) well-defined. *)
module Histogram : sig
  type h

  val create : ?lo:float -> ?growth:float -> ?buckets:int -> unit -> h
  (** Defaults: [lo = 1.0], [growth = 2.0], [buckets = 32] (plus the
      implicit overflow bucket). Raises [Invalid_argument] unless
      [lo > 0.], [growth > 1.] and [buckets >= 1]. *)

  val add : h -> float -> unit
  (** Raises [Invalid_argument] on NaN — a silently mis-bucketed NaN
      would corrupt every percentile read from the buckets. *)

  val count : h -> int
  val total : h -> float
  val mean : h -> float

  val minimum : h -> float
  (** Exact observed minimum (not bucket-quantized); [infinity] when empty. *)

  val maximum : h -> float
  (** Exact observed maximum; [neg_infinity] when empty. *)

  val merge_into : into:h -> h -> unit
  (** Add [src]'s buckets into [into]. Raises [Invalid_argument] if the
      two histograms were created with different [lo]/[growth]/[buckets]. *)

  val percentile : h -> float -> float
  (** Percentile estimated from bucket counts with linear interpolation
      inside the target bucket, clamped to the observed [minimum]/[maximum].
      Quantization error is bounded by the bucket width (a factor of
      [growth]). Raises [Invalid_argument] when empty. *)

  val p50 : h -> float
  val p95 : h -> float
  val p99 : h -> float

  val buckets : h -> (float * int) array
  (** [(upper_bound, count)] per bucket, ascending; the final overflow
      bucket reports [infinity] as its bound. Counts are per-bucket, not
      cumulative. *)
end
