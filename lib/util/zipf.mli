(** Zipfian rank sampler (YCSB-style): [P(rank = r)] proportional to
    [1 / (r+1)^theta] over ranks [0..n-1], rank 0 hottest. Deterministic
    given the caller's {!Prng}. *)

type t

(** [create ?theta ~n ()] — precomputes the CDF in O(n). [theta]
    defaults to 0.99 (YCSB's skew); [theta = 0.] is uniform. Raises
    [Invalid_argument] when [n < 1] or [theta < 0]. *)
val create : ?theta:float -> n:int -> unit -> t

val n : t -> int

(** O(log n) binary search over the precomputed CDF. *)
val sample : t -> Prng.t -> int
