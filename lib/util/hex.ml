let digits = "0123456789abcdef"

let encode b =
  let n = Bytes.length b in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.get b i) in
    Bytes.set out (2 * i) digits.[c lsr 4];
    Bytes.set out ((2 * i) + 1) digits.[c land 0xf]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error (Printf.sprintf "odd-length hex string (%d chars)" n)
  else
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok out
      else
        match nibble s.[i], nibble s.[i + 1] with
        | Some hi, Some lo ->
            Bytes.set out (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ ->
            Error
              (Printf.sprintf "invalid hex character at offset %d"
                 (if nibble s.[i] = None then i else i + 1))
    in
    go 0
