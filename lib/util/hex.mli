(** Lowercase hex encoding of byte strings.

    Keys, nonces, MACs and digests cross the CLI boundary (dump files,
    [--key] arguments) as hex; the decoder is strict so a mangled
    argument or a hand-edited dump field fails loudly instead of
    silently truncating. *)

val encode : bytes -> string
(** ["deadbeef"]-style, two lowercase digits per byte. *)

val decode : string -> (bytes, string) result
(** Inverse of {!encode}. Accepts upper- and lowercase digits; rejects
    odd-length input and any non-hex character. *)
