open Mpk_hw
open Mpk_kernel

type mode = Baseline | Domain | Sync | Mprotect_sys

let mode_name = function
  | Baseline -> "original"
  | Domain -> "mpk_begin"
  | Sync -> "mpk_mprotect"
  | Mprotect_sys -> "mprotect"

let slab_vkey = 200
let hash_vkey = 201

(* parse the request line, build the response header, socket bookkeeping *)
let request_overhead_cycles = 8_000.0

(* One shard: its own slice of the slab arena and of the bucket region,
   its own recency queue. Sharding partitions the store per core so
   workers touch disjoint state; the protection discipline (the two
   vkeys) still covers the whole region — libmpk keys protect address
   ranges, not shards. *)
type shard = {
  table : Shash.t;
  shard_slab : Slab.t;
  lru : string Queue.t;  (* key recency for item eviction (lazy) *)
  mutable evicted : int;
}

type t = {
  mode : mode;
  proc : Proc.t;
  workers : Task.t array;
  attacker : Task.t;
  mpk : Libmpk.t option;
  sync_batch : bool;  (* Sync mode: batch the per-request mprotect pairs *)
  slab_base : int;
  slab_len : int;
  hash_base : int;
  hash_len : int;
  shards : shard array;
  mutable protocol_requests : int;
  latency : Mpk_util.Stats.Histogram.h;  (* per-request cycles, all entry points *)
}

let create ~mode ?(workers = 4) ?(shards = 1) ?(sync_batch = true) ?(slab_mib = 1024)
    ?(buckets = 1 lsl 16) () =
  if shards < 1 then invalid_arg "Server.create: shards must be >= 1";
  let machine = Machine.create ~cores:(workers + 1) ~mem_mib:(slab_mib + 256) () in
  let proc = Proc.create machine in
  let tasks = Array.init workers (fun i -> Proc.spawn proc ~core_id:i ()) in
  let attacker = Proc.spawn proc ~core_id:workers () in
  let main = tasks.(0) in
  let slab_len = slab_mib * 1024 * 1024 in
  let hash_len = buckets * 8 in
  let mpk, slab_base, hash_base =
    match mode with
    | Domain | Sync ->
        let mpk = Libmpk.init ~vkeys:[ slab_vkey; hash_vkey ] ~evict_rate:1.0 proc main in
        let slab_base = Libmpk.mpk_mmap mpk main ~vkey:slab_vkey ~len:slab_len ~prot:Perm.rw in
        let hash_base = Libmpk.mpk_mmap mpk main ~vkey:hash_vkey ~len:hash_len ~prot:Perm.rw in
        Some mpk, slab_base, hash_base
    | Baseline | Mprotect_sys ->
        let slab_base = Syscall.mmap proc main ~len:slab_len ~prot:Perm.rw () in
        let hash_base = Syscall.mmap proc main ~len:hash_len ~prot:Perm.rw () in
        (* Mprotect_sys keeps the regions sealed between requests. *)
        if mode = Mprotect_sys then begin
          Syscall.mprotect proc main ~addr:slab_base ~len:slab_len ~prot:Perm.none;
          Syscall.mprotect proc main ~addr:hash_base ~len:hash_len ~prot:Perm.none
        end;
        None, slab_base, hash_base
  in
  (* Partition the arena into per-shard slices: each needs at least one
     whole slab, and each shard's bucket strip at least one bucket. *)
  let shard_slab_len = slab_len / shards / Slab.slab_bytes * Slab.slab_bytes in
  if shard_slab_len < Slab.slab_bytes then
    invalid_arg "Server.create: slab region too small for this many shards";
  let shard_buckets = max 1 (buckets / shards) in
  if shards * shard_buckets > buckets then
    invalid_arg "Server.create: more shards than hash buckets";
  let shard_arr =
    Array.init shards (fun i ->
        let slab =
          Slab.create ~base:(slab_base + (i * shard_slab_len)) ~len:shard_slab_len
        in
        let table =
          Shash.create proc ~buckets:shard_buckets
            ~bucket_base:(hash_base + (i * shard_buckets * 8))
            slab
        in
        { table; shard_slab = slab; lru = Queue.create (); evicted = 0 })
  in
  {
    mode;
    proc;
    workers = tasks;
    attacker;
    mpk;
    sync_batch;
    slab_base;
    slab_len;
    hash_base;
    hash_len;
    shards = shard_arr;
    protocol_requests = 0;
    (* Requests span ~10k cycles (Baseline) to ~10M (Mprotect_sys over a
       populated gigabyte); log-spaced buckets cover the whole range. *)
    latency = Mpk_util.Stats.Histogram.create ~lo:1024.0 ~growth:2.0 ~buckets:20 ();
  }

let mode t = t.mode
let workers t = t.workers
let proc t = t.proc
let attacker_task t = t.attacker
let slab_base t = t.slab_base

let shard_count t = Array.length t.shards
let shard_of_key t key = Shash.hash key mod Array.length t.shards
let shard_for t key = t.shards.(shard_of_key t key)
let entry_count t = Array.fold_left (fun acc s -> acc + Shash.entry_count s.table) 0 t.shards
let slab_invariants t = Array.for_all (fun s -> Slab.invariant s.shard_slab) t.shards

let mpk t = t.mpk
let mpk_exn t = match t.mpk with Some m -> m | None -> assert false

(* Open both regions for the calling worker (or globally), run the store
   operation, seal again. Sealing happens even when [f] escapes with an
   exception (a signal-handler escape mid-request, an injected fault):
   a worker must never leave the store open, and a leaked mpk_begin pin
   would block key recycling forever. *)
let with_store t task f =
  match t.mode with
  | Baseline -> f ()
  | Domain ->
      let mpk = mpk_exn t in
      Libmpk.mpk_begin mpk task ~vkey:slab_vkey ~prot:Perm.rw;
      let hash_open = ref false in
      Fun.protect
        ~finally:(fun () ->
          if !hash_open then Libmpk.mpk_end mpk task ~vkey:hash_vkey;
          Libmpk.mpk_end mpk task ~vkey:slab_vkey)
        (fun () ->
          Libmpk.mpk_begin mpk task ~vkey:hash_vkey ~prot:Perm.rw;
          hash_open := true;
          f ())
  | Sync when t.sync_batch ->
      (* Both open and both seal travel as one batched mprotect each: a
         single do_pkey_sync per pair, so one IPI per remote core instead
         of one per vkey update. *)
      let mpk = mpk_exn t in
      Libmpk.mpk_mprotect_many mpk task
        ~updates:[ (slab_vkey, Perm.rw); (hash_vkey, Perm.rw) ];
      Fun.protect
        ~finally:(fun () ->
          Libmpk.mpk_mprotect_many mpk task
            ~updates:[ (hash_vkey, Perm.none); (slab_vkey, Perm.none) ])
        f
  | Sync ->
      let mpk = mpk_exn t in
      Libmpk.mpk_mprotect mpk task ~vkey:slab_vkey ~prot:Perm.rw;
      Fun.protect
        ~finally:(fun () ->
          Libmpk.mpk_mprotect mpk task ~vkey:hash_vkey ~prot:Perm.none;
          Libmpk.mpk_mprotect mpk task ~vkey:slab_vkey ~prot:Perm.none)
        (fun () ->
          Libmpk.mpk_mprotect mpk task ~vkey:hash_vkey ~prot:Perm.rw;
          f ())
  | Mprotect_sys ->
      Syscall.mprotect t.proc task ~addr:t.slab_base ~len:t.slab_len ~prot:Perm.rw;
      Fun.protect
        ~finally:(fun () ->
          Syscall.mprotect t.proc task ~addr:t.hash_base ~len:t.hash_len ~prot:Perm.none;
          Syscall.mprotect t.proc task ~addr:t.slab_base ~len:t.slab_len ~prot:Perm.none)
        (fun () ->
          Syscall.mprotect t.proc task ~addr:t.hash_base ~len:t.hash_len ~prot:Perm.rw;
          f ())

let worker_task t i =
  if i < 0 || i >= Array.length t.workers then invalid_arg "Server: bad worker";
  t.workers.(i)

let charge_request task =
  Cpu.charge ~label:"request_overhead" (Task.core task) request_overhead_cycles

let latency t = t.latency

(* Every request records its end-to-end cycle cost (protection discipline
   included) into the latency histogram. Recorded even when the request
   escapes with a signal: the cycles were spent either way. *)
let timed t task f =
  let start = Cpu.cycles (Task.core task) in
  Fun.protect
    ~finally:(fun () ->
      Mpk_util.Stats.Histogram.add t.latency (Cpu.cycles (Task.core task) -. start))
    f

let set t ~worker ~key ~value =
  let task = worker_task t worker in
  timed t task @@ fun () ->
  charge_request task;
  with_store t task (fun () -> Shash.set (shard_for t key).table task ~key ~value)

let get t ~worker ~key =
  let task = worker_task t worker in
  timed t task @@ fun () ->
  charge_request task;
  with_store t task (fun () -> Shash.get (shard_for t key).table task ~key)

let delete t ~worker ~key =
  let task = worker_task t worker in
  timed t task @@ fun () ->
  charge_request task;
  with_store t task (fun () -> Shash.delete (shard_for t key).table task ~key)

let prefill t ~items ~value_size =
  let value = Bytes.make value_size 'v' in
  for i = 0 to items - 1 do
    match set t ~worker:(i mod Array.length t.workers) ~key:(Printf.sprintf "key-%d" i) ~value with
    | Ok () -> ()
    | Error e -> Errno.fail e "prefill: slab exhausted after %d items" i
  done

let populate_slab t ~mib =
  let len = min (mib * 1024 * 1024) t.slab_len in
  let main = t.workers.(0) in
  match t.mode with
  | Baseline | Mprotect_sys ->
      (* Mprotect_sys seals the region; populate through a write window. *)
      with_store t main (fun () ->
          Mm.populate (Proc.mm t.proc) (Task.core main) ~addr:t.slab_base ~len)
  | Domain | Sync ->
      with_store t main (fun () ->
          Mm.populate (Proc.mm t.proc) (Task.core main) ~addr:t.slab_base ~len)

(* --- protocol front end: items carry [flags:4][deadline:8][payload] --- *)

let item_header = 12

let encode_item ~flags ~deadline payload =
  let b = Bytes.create (item_header + Bytes.length payload) in
  Bytes.set_int32_le b 0 (Int32.of_int flags);
  Bytes.set_int64_le b 4 (Int64.of_float (deadline *. 1000.0));
  Bytes.blit payload 0 b item_header (Bytes.length payload);
  b

let decode_item b =
  let flags = Int32.to_int (Bytes.get_int32_le b 0) in
  let deadline = Int64.to_float (Bytes.get_int64_le b 4) /. 1000.0 in
  flags, deadline, Bytes.sub b item_header (Bytes.length b - item_header)

let items_evicted t = Array.fold_left (fun acc s -> acc + s.evicted) 0 t.shards

(* Reclaim the least-recently-used live item of one shard; false when
   nothing left there. The recency queue is lazy: stale entries
   (overwritten or deleted keys whose entry is no longer the newest) are
   skipped. Eviction is shard-local — the shard that is full is the one
   that must yield memory. *)
let evict_one_in shard task =
  let rec pop () =
    match Queue.take_opt shard.lru with
    | None -> false
    | Some key ->
        if Shash.delete shard.table task ~key then begin
          shard.evicted <- shard.evicted + 1;
          true
        end
        else pop ()
  in
  pop ()

let set_item t task ~key ~flags ~deadline payload =
  let shard = shard_for t key in
  let value = encode_item ~flags ~deadline payload in
  let rec attempt tries =
    match Shash.set shard.table task ~key ~value with
    | Ok () ->
        Queue.add key shard.lru;
        true
    | Error _ when tries > 0 -> if evict_one_in shard task then attempt (tries - 1) else false
    | Error _ -> false
  in
  attempt 64

let get_item t task ~now ~key =
  let shard = shard_for t key in
  match Shash.get shard.table task ~key with
  | None -> None
  | Some raw ->
      let flags, deadline, payload = decode_item raw in
      if deadline > 0.0 && now >= deadline then begin
        (* expired: reclaim on access, like Memcached *)
        ignore (Shash.delete shard.table task ~key);
        None
      end
      else begin
        Queue.add key shard.lru;
        Some (flags, payload)
      end

(* Escape hatch for the per-request signal guard: the handler raises this
   out of the faulting request; the dispatch loop catches it and answers
   with a protocol error, so one bad request cannot take the worker down. *)
exception Request_fault of Signal.siginfo

let guard_request task f =
  try Task.with_signal_handler task (fun si -> raise (Request_fault si)) f
  with Request_fault si ->
    Protocol.Server_error (Printf.sprintf "protection fault (%s)" (Signal.to_string si))

let latency_stats t =
  let h = t.latency in
  if Mpk_util.Stats.Histogram.count h = 0 then []
  else
    let cy p = Printf.sprintf "%.0f" (Mpk_util.Stats.Histogram.percentile h p) in
    [
      "latency_samples", string_of_int (Mpk_util.Stats.Histogram.count h);
      "latency_p50_cycles", cy 50.0;
      "latency_p95_cycles", cy 95.0;
      "latency_p99_cycles", cy 99.0;
    ]

let dispatch t ~worker ~now wire =
  let task = worker_task t worker in
  timed t task @@ fun () ->
  charge_request task;
  t.protocol_requests <- t.protocol_requests + 1;
  let response =
    guard_request task @@ fun () ->
    match Protocol.parse_request wire with
    | Error msg -> Protocol.Server_error msg
    | Ok (Protocol.Set { key; flags; exptime; data }) ->
        let deadline = if exptime > 0 then now +. float_of_int exptime else 0.0 in
        with_store t task (fun () ->
            if set_item t task ~key ~flags ~deadline data then Protocol.Stored
            else Protocol.Server_error "out of memory")
    | Ok (Protocol.Get key) ->
        with_store t task (fun () ->
            match get_item t task ~now ~key with
            | Some (flags, data) -> Protocol.Value { key; flags; data }
            | None -> Protocol.End_)
    | Ok (Protocol.Delete key) ->
        with_store t task (fun () ->
            if Shash.delete (shard_for t key).table task ~key then Protocol.Deleted
            else Protocol.Not_found)
    | Ok Protocol.Stats ->
        Protocol.Stats_reply
          ([
             "curr_items", string_of_int (entry_count t);
             "evictions", string_of_int (items_evicted t);
             "cmd_total", string_of_int t.protocol_requests;
             "mode", mode_name t.mode;
           ]
          @ latency_stats t)
  in
  Protocol.render_response response

(* A deliberately buggy request path: dereferences [addr] without opening
   the store — the kind of wild read a parsing bug produces. Under the
   protected modes the sealed regions trip a pkey fault, which the
   per-request guard converts to a protocol error; the worker survives.
   Under [Baseline] the read silently succeeds and leaks the byte. *)
let buggy_peek t ~worker ~addr =
  let task = worker_task t worker in
  timed t task @@ fun () ->
  charge_request task;
  t.protocol_requests <- t.protocol_requests + 1;
  let response =
    guard_request task @@ fun () ->
    let byte = Mmu.read_byte (Proc.mmu t.proc) (Task.core task) ~addr in
    Protocol.Value { key = "peek"; flags = 0; data = Bytes.make 1 byte }
  in
  Protocol.render_response response

let resident_pages t =
  let start = Page_table.vpn_of_addr t.slab_base in
  let pages = t.slab_len / Physmem.page_size in
  let table = Mm.page_table (Proc.mm t.proc) in
  let count = ref 0 in
  for vpn = start to start + pages - 1 do
    if Pte.is_present (Page_table.get table ~vpn) then incr count
  done;
  !count
