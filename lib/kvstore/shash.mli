(** A chained hash table living in simulated memory (paper §5.3: the hash
    table maintaining key→value mappings is the second structure libmpk
    protects in Memcached).

    Buckets are an array of 8-byte entry pointers in one region; entries
    ([next, keylen, vallen, key, value]) are slab chunks. Every byte is
    read and written through the MMU with the calling task's core, so
    page permissions and protection keys apply to the lookup path
    itself. *)

open Mpk_kernel

type t

(** [create proc ~buckets ~bucket_base slab] — [bucket_base] must point
    at a mapped region of at least [8 * buckets] bytes. *)
val create : Proc.t -> buckets:int -> bucket_base:int -> Slab.t -> t

(** The table's key hash (FNV-1a), exposed so a sharded store can route a
    key to its owning shard with the same function the buckets use. *)
val hash : string -> int

val buckets : t -> int

(** [set t task ~key ~value] — insert or overwrite. [Error ENOSPC] when
    the slab region is exhausted (the caller decides whether to evict,
    report, or fail — nothing is written in that case). *)
val set : t -> Task.t -> key:string -> value:bytes -> (unit, Errno.t) result

val get : t -> Task.t -> key:string -> bytes option

(** [delete t task ~key] — true when the key existed. *)
val delete : t -> Task.t -> key:string -> bool

val entry_count : t -> int
