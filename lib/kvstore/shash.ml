open Mpk_hw
open Mpk_kernel

type t = {
  proc : Proc.t;
  nbuckets : int;
  bucket_base : int;
  slab : Slab.t;
  mutable entries : int;
}

let header_bytes = 16  (* next:8  keylen:2  vallen:4  pad:2 *)

let create proc ~buckets ~bucket_base slab =
  if buckets <= 0 then invalid_arg "Shash.create: buckets must be positive";
  { proc; nbuckets = buckets; bucket_base; slab; entries = 0 }

let buckets t = t.nbuckets

(* FNV-1a, offset basis truncated to OCaml's 63-bit int *)
let hash key =
  let h = ref 0x4bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let bucket_addr t key = t.bucket_base + (hash key mod t.nbuckets * 8)

let read_ptr t task addr = Int64.to_int (Mmu.read_int64 (Proc.mmu t.proc) (Task.core task) ~addr)

let write_ptr t task addr v =
  Mmu.write_int64 (Proc.mmu t.proc) (Task.core task) ~addr (Int64.of_int v)

let read_entry_header t task entry =
  let mmu = Proc.mmu t.proc in
  let core = Task.core task in
  let next = Int64.to_int (Mmu.read_int64 mmu core ~addr:entry) in
  let hdr = Mmu.read_bytes mmu core ~addr:(entry + 8) ~len:8 in
  let keylen = Bytes.get_uint16_le hdr 0 in
  let vallen = Int32.to_int (Bytes.get_int32_le hdr 2) in
  next, keylen, vallen

let read_key t task entry keylen =
  Bytes.to_string
    (Mmu.read_bytes (Proc.mmu t.proc) (Task.core task) ~addr:(entry + header_bytes) ~len:keylen)

(* Find the entry for [key] in its chain, with its predecessor link
   address (the bucket slot or the previous entry's next field). *)
let find_with_prev t task ~key =
  (* prev_link is where the pointer to [entry] is stored: the bucket slot
     for the head, otherwise the predecessor's next field (offset 0). *)
  let rec walk prev_link entry =
    if entry = 0 then None
    else begin
      let next, keylen, vallen = read_entry_header t task entry in
      if keylen = String.length key && read_key t task entry keylen = key then
        Some (prev_link, entry, next, keylen, vallen)
      else walk entry next
    end
  in
  let slot = bucket_addr t key in
  walk slot (read_ptr t task slot)

let unlink t task ~prev_link ~entry ~next =
  (* prev_link is either a bucket slot or a predecessor entry address;
     in both cases the next-pointer lives at offset 0. *)
  ignore entry;
  write_ptr t task prev_link next

let set t task ~key ~value =
  let mmu = Proc.mmu t.proc in
  let core = Task.core task in
  let keylen = String.length key in
  let vallen = Bytes.length value in
  let size = header_bytes + keylen + vallen in
  match Slab.alloc t.slab ~size with
  | None -> Error Errno.ENOSPC
  | Some entry ->
      let slot = bucket_addr t key in
      let old = find_with_prev t task ~key in
      let head = read_ptr t task slot in
      (* head insert *)
      write_ptr t task entry head;
      let hdr = Bytes.create 8 in
      Bytes.set_uint16_le hdr 0 keylen;
      Bytes.set_int32_le hdr 2 (Int32.of_int vallen);
      Bytes.set_uint16_le hdr 6 0;
      Mmu.write_bytes mmu core ~addr:(entry + 8) hdr;
      Mmu.write_bytes mmu core ~addr:(entry + header_bytes) (Bytes.of_string key);
      Mmu.write_bytes mmu core ~addr:(entry + header_bytes + keylen) value;
      write_ptr t task slot entry;
      t.entries <- t.entries + 1;
      (* drop a shadowed older version *)
      (match old with
      | Some (prev_link, old_entry, next, _, _) ->
          let prev_link = if prev_link = slot then entry else prev_link in
          unlink t task ~prev_link ~entry:old_entry ~next;
          Slab.free t.slab ~addr:old_entry;
          t.entries <- t.entries - 1
      | None -> ());
      Ok ()

let get t task ~key =
  match find_with_prev t task ~key with
  | None -> None
  | Some (_, entry, _, keylen, vallen) ->
      Some
        (Mmu.read_bytes (Proc.mmu t.proc) (Task.core task)
           ~addr:(entry + header_bytes + keylen) ~len:vallen)

let delete t task ~key =
  match find_with_prev t task ~key with
  | None -> false
  | Some (prev_link, entry, next, _, _) ->
      unlink t task ~prev_link ~entry ~next;
      Slab.free t.slab ~addr:entry;
      t.entries <- t.entries - 1;
      true

let entry_count t = t.entries
