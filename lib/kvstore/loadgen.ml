open Mpk_hw
open Mpk_kernel

type result = {
  offered_conns : int;
  handled_conns : int;
  unhandled_conns : int;
  requests : int;
  data_bytes : int;
  duration_s : float;
  throughput_rps : float;
  data_mb_s : float;
}

let run server ~conn_rate ?(duration_s = 1.0) ?(reqs_per_conn = 10) ?(value_size = 1024)
    ?(working_set = 1000) ?(max_delay_s = 0.1) ?(ghz = 2.4) ?(protocol = false)
    ?(seed = 0xFEEDL) () =
  let workers = Server.workers server in
  let n = Array.length workers in
  let cycles_per_s = ghz *. 1e9 in
  let prng = Mpk_util.Prng.create ~seed in
  let start = Array.map (fun w -> Cpu.cycles (Task.core w)) workers in
  let clock i = Cpu.cycles (Task.core workers.(i)) -. start.(i) in
  let offered = int_of_float (float_of_int conn_rate *. duration_s) in
  let interval = cycles_per_s /. float_of_int conn_rate in
  let max_delay = max_delay_s *. cycles_per_s in
  let handled = ref 0 in
  let unhandled = ref 0 in
  let requests = ref 0 in
  let data = ref 0 in
  for c = 0 to offered - 1 do
    let arrival = float_of_int c *. interval in
    (* least-loaded worker *)
    let w = ref 0 in
    for i = 1 to n - 1 do
      if clock i < clock !w then w := i
    done;
    if clock !w -. arrival > max_delay then incr unhandled
    else begin
      (* idle worker waits for the connection to arrive *)
      if clock !w < arrival then
        Cpu.charge ~label:"idle_wait" (Task.core workers.(!w)) (arrival -. clock !w);
      incr handled;
      for _ = 1 to reqs_per_conn do
        incr requests;
        let key = Printf.sprintf "key-%d" (Mpk_util.Prng.int prng working_set) in
        let is_get = Mpk_util.Prng.float prng < 0.9 in
        if protocol then begin
          let wire =
            if is_get then Protocol.render_request (Protocol.Get key)
            else
              Protocol.render_request
                (Protocol.Set { key; flags = 0; exptime = 0; data = Bytes.make value_size 'w' })
          in
          let now = clock !w /. cycles_per_s in
          let reply = Server.dispatch server ~worker:!w ~now wire in
          match Protocol.parse_response reply with
          | Ok (Protocol.Value { data = d; _ }) -> data := !data + Bytes.length d
          | Ok Protocol.Stored -> data := !data + value_size
          | Ok _ | Error _ -> ()
        end
        else if is_get then (
          match Server.get server ~worker:!w ~key with
          | Some v -> data := !data + Bytes.length v
          | None -> ())
        else begin
          match Server.set server ~worker:!w ~key ~value:(Bytes.make value_size 'w') with
          | Ok () -> data := !data + value_size
          | Error _ -> ()
        end
      done
    end
  done;
  let makespan =
    Array.to_list workers
    |> List.mapi (fun i _ -> clock i)
    |> List.fold_left Float.max (duration_s *. cycles_per_s)
  in
  let seconds = makespan /. cycles_per_s in
  {
    offered_conns = offered;
    handled_conns = !handled;
    unhandled_conns = !unhandled;
    requests = !requests;
    data_bytes = !data;
    duration_s = seconds;
    throughput_rps = float_of_int !requests /. seconds;
    data_mb_s = float_of_int !data /. (seconds *. 1e6);
  }

(* --- multi-core scale workload: zipfian keys, connection churn, shard
   routing, per-core accounting --- *)

type loop =
  | Open_loop of int  (* offered connections per second; late arrivals drop *)
  | Closed_loop of int  (* total connections, issued back-to-back (saturation) *)

type scale_result = {
  loop : loop;
  s_offered_conns : int;
  s_handled_conns : int;
  s_dropped_conns : int;
  s_requests : int;
  s_gets : int;
  s_sets : int;
  s_data_bytes : int;
  s_duration_s : float;
  s_throughput_rps : float;
  p50_cycles : float;
  p95_cycles : float;
  p99_cycles : float;
  ipis : int;  (* IPIs sent during the run (sync kicks + shootdowns) *)
  per_core_busy_s : float array;  (* per-worker busy time, seconds *)
}

let run_scale server ~loop ?(reqs_per_conn = 10) ?(value_size = 1024)
    ?(working_set = 10_000) ?(theta = 0.99) ?(get_ratio = 0.9)
    ?(conn_setup_cycles = 3_000.0) ?(duration_s = 1.0) ?(max_delay_s = 0.1) ?(ghz = 2.4)
    ?(seed = 0xC0FEL) () =
  let workers = Server.workers server in
  let n = Array.length workers in
  let cycles_per_s = ghz *. 1e9 in
  let prng = Mpk_util.Prng.create ~seed in
  let zipf = Mpk_util.Zipf.create ~theta ~n:working_set () in
  let start = Array.map (fun w -> Cpu.cycles (Task.core w)) workers in
  let clock i = Cpu.cycles (Task.core workers.(i)) -. start.(i) in
  let sched = Proc.sched (Server.proc server) in
  let ipis0 = Sched.ipis_sent sched in
  let lat = Mpk_util.Stats.Histogram.create ~lo:1024.0 ~growth:2.0 ~buckets:24 () in
  let handled = ref 0 and dropped = ref 0 and requests = ref 0 in
  let gets = ref 0 and sets = ref 0 and data = ref 0 in
  (* With a sharded store, requests run on the shard's owning worker
     (key-affine routing: the connection hands the request over); an
     unsharded store serves on the connection's worker. *)
  let sharded = Server.shard_count server > 1 in
  (* [queue_delay] is the time the connection spent waiting for an
     accept (open loop only): every request on a queued connection
     experiences it, so it counts toward the recorded sojourn latency —
     without it the tail stays flat past saturation and the knee is
     invisible. *)
  let exec_request ~queue_delay conn_worker =
    incr requests;
    let key = Printf.sprintf "key-%d" (Mpk_util.Zipf.sample zipf prng) in
    let w = if sharded then Server.shard_of_key server key mod n else conn_worker in
    let core = Task.core workers.(w) in
    let t0 = Cpu.cycles core in
    (if Mpk_util.Prng.float prng < get_ratio then begin
       incr gets;
       match Server.get server ~worker:w ~key with
       | Some v -> data := !data + Bytes.length v
       | None -> ()
     end
     else begin
       incr sets;
       match Server.set server ~worker:w ~key ~value:(Bytes.make value_size 'w') with
       | Ok () -> data := !data + value_size
       | Error _ -> ()
     end);
    Mpk_util.Stats.Histogram.add lat (Cpu.cycles core -. t0 +. queue_delay)
  in
  let run_conn ?(queue_delay = 0.0) w =
    incr handled;
    (* connection churn: accept + session setup + teardown *)
    Cpu.charge ~label:"conn_churn" (Task.core workers.(w)) conn_setup_cycles;
    for _ = 1 to reqs_per_conn do
      exec_request ~queue_delay w
    done
  in
  let offered =
    match loop with
    | Closed_loop conns ->
        for c = 0 to conns - 1 do
          run_conn (c mod n)
        done;
        conns
    | Open_loop rate ->
        let offered = int_of_float (float_of_int rate *. duration_s) in
        let interval = cycles_per_s /. float_of_int rate in
        let max_delay = max_delay_s *. cycles_per_s in
        for c = 0 to offered - 1 do
          let arrival = float_of_int c *. interval in
          (* least-loaded worker accepts *)
          let w = ref 0 in
          for i = 1 to n - 1 do
            if clock i < clock !w then w := i
          done;
          let queue_delay = clock !w -. arrival in
          if queue_delay > max_delay then incr dropped
          else begin
            if queue_delay < 0.0 then
              Cpu.charge ~label:"idle_wait" (Task.core workers.(!w)) (-.queue_delay);
            run_conn ~queue_delay:(Float.max 0.0 queue_delay) !w
          end
        done;
        offered
  in
  let makespan = ref 0.0 in
  for i = 0 to n - 1 do
    makespan := Float.max !makespan (clock i)
  done;
  let seconds = !makespan /. cycles_per_s in
  let pct p = Mpk_util.Stats.Histogram.percentile lat p in
  {
    loop;
    s_offered_conns = offered;
    s_handled_conns = !handled;
    s_dropped_conns = !dropped;
    s_requests = !requests;
    s_gets = !gets;
    s_sets = !sets;
    s_data_bytes = !data;
    s_duration_s = seconds;
    s_throughput_rps = (if seconds > 0.0 then float_of_int !requests /. seconds else 0.0);
    p50_cycles = pct 50.0;
    p95_cycles = pct 95.0;
    p99_cycles = pct 99.0;
    ipis = Sched.ipis_sent sched - ipis0;
    per_core_busy_s = Array.init n clock |> Array.map (fun c -> c /. cycles_per_s);
  }
