open Mpk_hw
open Mpk_kernel

type result = {
  offered_conns : int;
  handled_conns : int;
  unhandled_conns : int;
  requests : int;
  data_bytes : int;
  duration_s : float;
  throughput_rps : float;
  data_mb_s : float;
}

let run server ~conn_rate ?(duration_s = 1.0) ?(reqs_per_conn = 10) ?(value_size = 1024)
    ?(working_set = 1000) ?(max_delay_s = 0.1) ?(ghz = 2.4) ?(protocol = false) () =
  let workers = Server.workers server in
  let n = Array.length workers in
  let cycles_per_s = ghz *. 1e9 in
  let prng = Mpk_util.Prng.create ~seed:0xFEEDL in
  let start = Array.map (fun w -> Cpu.cycles (Task.core w)) workers in
  let clock i = Cpu.cycles (Task.core workers.(i)) -. start.(i) in
  let offered = int_of_float (float_of_int conn_rate *. duration_s) in
  let interval = cycles_per_s /. float_of_int conn_rate in
  let max_delay = max_delay_s *. cycles_per_s in
  let handled = ref 0 in
  let unhandled = ref 0 in
  let requests = ref 0 in
  let data = ref 0 in
  for c = 0 to offered - 1 do
    let arrival = float_of_int c *. interval in
    (* least-loaded worker *)
    let w = ref 0 in
    for i = 1 to n - 1 do
      if clock i < clock !w then w := i
    done;
    if clock !w -. arrival > max_delay then incr unhandled
    else begin
      (* idle worker waits for the connection to arrive *)
      if clock !w < arrival then
        Cpu.charge ~label:"idle_wait" (Task.core workers.(!w)) (arrival -. clock !w);
      incr handled;
      for _ = 1 to reqs_per_conn do
        incr requests;
        let key = Printf.sprintf "key-%d" (Mpk_util.Prng.int prng working_set) in
        let is_get = Mpk_util.Prng.float prng < 0.9 in
        if protocol then begin
          let wire =
            if is_get then Protocol.render_request (Protocol.Get key)
            else
              Protocol.render_request
                (Protocol.Set { key; flags = 0; exptime = 0; data = Bytes.make value_size 'w' })
          in
          let now = clock !w /. cycles_per_s in
          let reply = Server.dispatch server ~worker:!w ~now wire in
          match Protocol.parse_response reply with
          | Ok (Protocol.Value { data = d; _ }) -> data := !data + Bytes.length d
          | Ok Protocol.Stored -> data := !data + value_size
          | Ok _ | Error _ -> ()
        end
        else if is_get then (
          match Server.get server ~worker:!w ~key with
          | Some v -> data := !data + Bytes.length v
          | None -> ())
        else begin
          match Server.set server ~worker:!w ~key ~value:(Bytes.make value_size 'w') with
          | Ok () -> data := !data + value_size
          | Error _ -> ()
        end
      done
    end
  done;
  let makespan =
    Array.to_list workers
    |> List.mapi (fun i _ -> clock i)
    |> List.fold_left Float.max (duration_s *. cycles_per_s)
  in
  let seconds = makespan /. cycles_per_s in
  {
    offered_conns = offered;
    handled_conns = !handled;
    unhandled_conns = !unhandled;
    requests = !requests;
    data_bytes = !data;
    duration_s = seconds;
    throughput_rps = float_of_int !requests /. seconds;
    data_mb_s = float_of_int !data /. (seconds *. 1e6);
  }
