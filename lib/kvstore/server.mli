(** The Memcached stand-in (paper §5.3 / Fig 14): a multi-threaded
    key-value store whose slabs and hash table live in simulated memory,
    protected by one of four schemes:

    - [Baseline] — no protection (original Memcached).
    - [Domain] — thread-local isolation: every legitimate access is
      wrapped in [mpk_begin]/[mpk_end] on the two hardcoded virtual keys
      (one for slabs, one for the hash table, as the paper does).
    - [Sync] — process-global locking via [mpk_mprotect]: the regions are
      opened rw before and sealed after each request, with mprotect
      semantics but PKRU speed.
    - [Mprotect_sys] — the same locking discipline done with real
      [mprotect], whose cost scales with the *populated* size of the
      1 GiB slab region. *)

open Mpk_kernel

type mode = Baseline | Domain | Sync | Mprotect_sys

val mode_name : mode -> string

(** The two hardcoded virtual keys (slab arena, hash index). Exposed so
    the static-analysis model lints the same keys the server uses. *)
val slab_vkey : Libmpk.Vkey.t

val hash_vkey : Libmpk.Vkey.t

type t

(** [create ~mode ~workers ~shards ~sync_batch ~slab_mib ~buckets ()] —
    builds a machine, process, [workers] tasks, the regions and (for the
    libmpk modes) the libmpk instance.

    [shards] (default 1) partitions the slab arena and the bucket region
    into per-shard slices with shard-local LRU eviction; keys route to
    shards by the table's own hash, so with [shards = workers] each
    worker can serve its shard with no cross-core data sharing. The
    protection keys still cover the whole regions — libmpk keys protect
    address ranges, not shards.

    [sync_batch] (default true) makes [Sync] mode open and seal the two
    regions with one batched [mpk_mprotect_many] pair per request (one
    [do_pkey_sync] — and so one IPI per remote core — per pair) instead
    of four individually synchronized [mpk_mprotect] calls. *)
val create :
  mode:mode ->
  ?workers:int ->
  ?shards:int ->
  ?sync_batch:bool ->
  ?slab_mib:int ->
  ?buckets:int ->
  unit ->
  t

val mode : t -> mode
val workers : t -> Task.t array
val proc : t -> Proc.t

val shard_count : t -> int

(** The shard a key routes to (same hash as the table's buckets). *)
val shard_of_key : t -> string -> int

(** Live items across all shards. *)
val entry_count : t -> int

(** Every shard's slab allocator passes its internal invariant check. *)
val slab_invariants : t -> bool

(** The libmpk instance behind the [Domain]/[Sync] modes ([None] for the
    others) — exposed so the cross-layer auditor can run against a live
    server. *)
val mpk : t -> Libmpk.t option

(** Per-request parsing/response cost charged outside the store proper. *)
val request_overhead_cycles : float

(** [set t ~worker ~key ~value] / [get t ~worker ~key] — one client
    request handled by the given worker thread, with the mode's
    protection discipline around the store access. [Error ENOSPC] when
    the slab region is exhausted. *)
val set : t -> worker:int -> key:string -> value:bytes -> (unit, Errno.t) result

val get : t -> worker:int -> key:string -> bytes option

val delete : t -> worker:int -> key:string -> bool

(** [prefill t ~items ~value_size] — load [items] entries (and fault in
    their pages), then [populate_slab t ~mib] forces residency of that
    many MiB of the slab region — the "Memcached holding a gigabyte"
    state of Fig 14. *)
val prefill : t -> items:int -> value_size:int -> unit

val populate_slab : t -> mib:int -> unit

(** Residency of the slab region, in pages. *)
val resident_pages : t -> int

(* --- protocol front end --- *)

(** [dispatch t ~worker ~now wire] — parse one Memcached text-protocol
    request, execute it (with the mode's protection discipline), render
    the response. [now] is the wall clock in seconds for TTL handling:
    a [set] with [exptime > 0] expires at [now + exptime]; expired items
    answer NOT_FOUND and are reclaimed. When the slab region fills, the
    least-recently-used items are evicted, as Memcached does. *)
val dispatch : t -> worker:int -> now:float -> string -> string

(** Items evicted by the LRU reclaimer so far. *)
val items_evicted : t -> int

(** End-to-end per-request latency in simulated cycles, across all entry
    points ([set]/[get]/[delete]/[dispatch]/[buggy_peek]), protection
    discipline included. [stats] requests report p50/p95/p99 from this
    histogram once at least one request has completed. *)
val latency : t -> Mpk_util.Stats.Histogram.h

(** [buggy_peek t ~worker ~addr] — a request path with a planted bug: it
    reads [addr] without opening the store. In the protected modes the
    per-request signal guard turns the resulting pkey fault into a
    [SERVER_ERROR] response and the worker keeps serving; in [Baseline]
    the read succeeds and the response leaks the byte. *)
val buggy_peek : t -> worker:int -> addr:int -> string

(** Direct (attacker) access to the slab region from a non-worker task:
    used by security tests. *)
val attacker_task : t -> Task.t

val slab_base : t -> int
