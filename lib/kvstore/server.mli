(** The Memcached stand-in (paper §5.3 / Fig 14): a multi-threaded
    key-value store whose slabs and hash table live in simulated memory,
    protected by one of four schemes:

    - [Baseline] — no protection (original Memcached).
    - [Domain] — thread-local isolation: every legitimate access is
      wrapped in [mpk_begin]/[mpk_end] on the two hardcoded virtual keys
      (one for slabs, one for the hash table, as the paper does).
    - [Sync] — process-global locking via [mpk_mprotect]: the regions are
      opened rw before and sealed after each request, with mprotect
      semantics but PKRU speed.
    - [Mprotect_sys] — the same locking discipline done with real
      [mprotect], whose cost scales with the *populated* size of the
      1 GiB slab region. *)

open Mpk_kernel

type mode = Baseline | Domain | Sync | Mprotect_sys

val mode_name : mode -> string

(** The two hardcoded virtual keys (slab arena, hash index). Exposed so
    the static-analysis model lints the same keys the server uses. *)
val slab_vkey : Libmpk.Vkey.t

val hash_vkey : Libmpk.Vkey.t

type t

(** [create ~mode ~workers ~slab_mib ~buckets ()] — builds a machine,
    process, [workers] tasks, the regions and (for the libmpk modes) the
    libmpk instance. *)
val create : mode:mode -> ?workers:int -> ?slab_mib:int -> ?buckets:int -> unit -> t

val mode : t -> mode
val workers : t -> Task.t array
val proc : t -> Proc.t

(** Per-request parsing/response cost charged outside the store proper. *)
val request_overhead_cycles : float

(** [set t ~worker ~key ~value] / [get t ~worker ~key] — one client
    request handled by the given worker thread, with the mode's
    protection discipline around the store access. [Error ENOSPC] when
    the slab region is exhausted. *)
val set : t -> worker:int -> key:string -> value:bytes -> (unit, Errno.t) result

val get : t -> worker:int -> key:string -> bytes option

val delete : t -> worker:int -> key:string -> bool

(** [prefill t ~items ~value_size] — load [items] entries (and fault in
    their pages), then [populate_slab t ~mib] forces residency of that
    many MiB of the slab region — the "Memcached holding a gigabyte"
    state of Fig 14. *)
val prefill : t -> items:int -> value_size:int -> unit

val populate_slab : t -> mib:int -> unit

(** Residency of the slab region, in pages. *)
val resident_pages : t -> int

(* --- protocol front end --- *)

(** [dispatch t ~worker ~now wire] — parse one Memcached text-protocol
    request, execute it (with the mode's protection discipline), render
    the response. [now] is the wall clock in seconds for TTL handling:
    a [set] with [exptime > 0] expires at [now + exptime]; expired items
    answer NOT_FOUND and are reclaimed. When the slab region fills, the
    least-recently-used items are evicted, as Memcached does. *)
val dispatch : t -> worker:int -> now:float -> string -> string

(** Items evicted by the LRU reclaimer so far. *)
val items_evicted : t -> int

(** End-to-end per-request latency in simulated cycles, across all entry
    points ([set]/[get]/[delete]/[dispatch]/[buggy_peek]), protection
    discipline included. [stats] requests report p50/p95/p99 from this
    histogram once at least one request has completed. *)
val latency : t -> Mpk_util.Stats.Histogram.h

(** [buggy_peek t ~worker ~addr] — a request path with a planted bug: it
    reads [addr] without opening the store. In the protected modes the
    per-request signal guard turns the resulting pkey fault into a
    [SERVER_ERROR] response and the worker keeps serving; in [Baseline]
    the read succeeds and the response leaks the byte. *)
val buggy_peek : t -> worker:int -> addr:int -> string

(** Direct (attacker) access to the slab region from a non-worker task:
    used by security tests. *)
val attacker_task : t -> Task.t

val slab_base : t -> int
