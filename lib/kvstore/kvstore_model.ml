(* IR model of the memcached-style kvstore's libmpk protocol (§6.3,
   Domain mode).

   Two page groups — the slab arena and the hash index — are opened per
   request with nested mpk_begin(rw) by each worker thread. The request
   body runs under a signal guard: a pkey fault mid-request escapes to a
   handler that closes both domains and answers SERVER_ERROR (the
   per-request guard from the PR 3 signal layer). Main spawns the
   workers, ticks epochs, joins them, and tears the groups down.

   Planted violations (behind flags):
   - [`Unbalanced]  worker 1 grows a "reply from L1 cache" fast path
                    that returns early, closing only the hash domain —
                    the slab begin leaks on that path
   - [`Toctou]      main publishes the slab globally (mpk_mprotect rw),
                    spawns a bare scanner thread that reads it with no
                    domain of its own, then seals the slab
                    (mpk_mprotect none) while the scanner is live — the
                    revocation races the scanner's lazy do_pkey_sync *)

open Mpk_analysis
open Mpk_hw

let slab = Server.slab_vkey
let hash = Server.hash_vkey
let scanner_tid = 3

let program ?plant () =
  let open Ir in
  let close_both = [ op (End { vkey = hash }); op (End { vkey = slab }) ] in
  let worker ?(fast_path = false) () =
    let request_tail =
      if fast_path then
        [
          If
            ( "hit in L1 cache?",
              [ op (End { vkey = hash }); label "reply from L1 (slab end missed)" ],
              close_both );
        ]
      else close_both
    in
    [
      Loop
        ( "requests",
          [
            op (Begin { vkey = slab; prot = Perm.rw });
            op (Begin { vkey = hash; prot = Perm.rw });
            Guard
              ( [
                  label "parse request";
                  op (Write { vkey = hash });
                  op (Write { vkey = slab });
                  op (Read { vkey = slab });
                ]
                @ request_tail,
                close_both @ [ label "answer SERVER_ERROR" ] );
          ] );
    ]
  in
  let scanner = [ Loop ("bare scan", [ op (Read { vkey = slab }) ]) ] in
  let plant_toctou = plant = Some `Toctou in
  let main =
    [
      op (Mmap { vkey = slab; pages = 4; prot = Perm.rw });
      op (Mmap { vkey = hash; pages = 1; prot = Perm.rw });
    ]
    @ (if plant_toctou then
         [
           label "publish slab globally";
           op (Mprotect { vkey = slab; prot = Perm.rw });
         ]
       else [])
    @ [ op (Spawn { tid = 1 }); op (Spawn { tid = 2 }) ]
    @ (if plant_toctou then [ op (Spawn { tid = scanner_tid }) ] else [])
    @ [ Loop ("epochs", [ label "tick" ]) ]
    @ (if plant_toctou then
         [
           label "seal epoch while scanner is live";
           op (Mprotect { vkey = slab; prot = Perm.none });
         ]
       else [])
    @ [ op (Join { tid = 1 }); op (Join { tid = 2 }) ]
    @ (if plant_toctou then [ op (Join { tid = scanner_tid }) ] else [])
    @ [ op (Free { vkey = slab }); op (Free { vkey = hash }) ]
  in
  let threads =
    [ 1, worker ~fast_path:(plant = Some `Unbalanced) (); 2, worker () ]
    @ if plant_toctou then [ scanner_tid, scanner ] else []
  in
  Ir.build ~name:"kvstore" ~main ~threads ()
