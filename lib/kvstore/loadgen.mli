(** twemperf-style connection generator (paper Fig 14).

    Connections arrive at a fixed rate; each carries [reqs_per_conn]
    requests (the paper: 10). Arrivals go to the least-loaded worker; a
    connection that would wait longer than [max_delay_s] in the accept
    queue is dropped and counted unhandled — the figure's second panel. *)

type result = {
  offered_conns : int;
  handled_conns : int;
  unhandled_conns : int;
  requests : int;
  data_bytes : int;
  duration_s : float;
  throughput_rps : float;
  data_mb_s : float;
}

(** [run server ~conn_rate ~duration_s ~reqs_per_conn ~value_size ()] —
    90% gets / 10% sets over a working set preloaded by the caller. With
    [protocol:true] every request travels as Memcached text-protocol
    bytes through [Server.dispatch] (parse + TTL + LRU path) instead of
    the direct API. *)
val run :
  Server.t ->
  conn_rate:int ->
  ?duration_s:float ->
  ?reqs_per_conn:int ->
  ?value_size:int ->
  ?working_set:int ->
  ?max_delay_s:float ->
  ?ghz:float ->
  ?protocol:bool ->
  ?seed:int64 ->
  unit ->
  result

(** {2 Multi-core scale workload} *)

type loop =
  | Open_loop of int
      (** offered connections per second; arrivals waiting longer than
          [max_delay_s] in the accept queue are dropped *)
  | Closed_loop of int
      (** total connections issued back-to-back with zero think time —
          the saturation (capacity) measurement *)

type scale_result = {
  loop : loop;
  s_offered_conns : int;
  s_handled_conns : int;
  s_dropped_conns : int;
  s_requests : int;
  s_gets : int;
  s_sets : int;
  s_data_bytes : int;
  s_duration_s : float;  (** makespan across worker cores *)
  s_throughput_rps : float;
  p50_cycles : float;
  p95_cycles : float;
  p99_cycles : float;
  ipis : int;  (** IPIs sent during the run (sync kicks + shootdowns) *)
  per_core_busy_s : float array;  (** per-worker busy time, seconds *)
}

(** [run_scale server ~loop ()] — the scale-out workload: zipfian keys
    ([theta], default 0.99 over [working_set] ranks), [get_ratio]
    get/set mix, per-connection churn cost ([conn_setup_cycles] on the
    accepting worker), and key-affine routing — with a sharded server
    each request executes on its shard's owning worker. Latency
    percentiles cover exactly this run's requests (end-to-end per
    request, protection discipline included); [ipis] counts the
    scheduler's IPIs during the run, so batched and per-update sync can
    be compared on identical workloads by seed. *)
val run_scale :
  Server.t ->
  loop:loop ->
  ?reqs_per_conn:int ->
  ?value_size:int ->
  ?working_set:int ->
  ?theta:float ->
  ?get_ratio:float ->
  ?conn_setup_cycles:float ->
  ?duration_s:float ->
  ?max_delay_s:float ->
  ?ghz:float ->
  ?seed:int64 ->
  unit ->
  scale_result
