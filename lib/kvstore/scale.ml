open Mpk_kernel
module Json = Mpk_trace.Json
module Metrics = Mpk_trace.Metrics

(* One core count, measured twice on the identical workload (same seed,
   same zipfian key stream): once with batched do_pkey_sync IPIs (and
   the server's batched mprotect pairs), once with the per-update
   broadcast reference. [ipi_events_*] count actual [Ipi] trace events
   observed during the measured run — the quantity the batching is
   supposed to shrink. *)
type point = {
  cores : int;
  batched : Loadgen.scale_result;
  per_update : Loadgen.scale_result;
  ipi_events_batched : int;
  ipi_events_per_update : int;
  per_core_ipis : (int * int * int) list;  (* core, sent, received (batched run) *)
  audit_violations : string list;
  slabs_ok : bool;
}

(* One arrival rate of the open-loop sweep (fixed core count). Unlike
   the closed loop, offered load is decoupled from service capacity, so
   past saturation the drop counter climbs and tail latency leaves the
   flat region — the knee the sweep exists to locate. *)
type open_point = {
  op_rate : int;  (* offered connections per second *)
  op_result : Loadgen.scale_result;
  op_audit_violations : string list;
  op_slabs_ok : bool;
}

type open_sweep = {
  os_cores : int;
  os_duration_s : float;
  os_points : open_point list;  (* ascending rate *)
  os_knee : int option;
      (* first rate whose p99 exceeds 2x the lowest rate's, or that
         drops > 1% of offered connections; None = knee beyond range *)
}

type report = {
  mode : Server.mode;
  closed_conns : int;
  seed : int64;
  smoke : bool;
  points : point list;
  open_loop : open_sweep option;  (* --open-loop sweep at max core count *)
}

type config = {
  c_slab_mib : int;
  c_buckets : int;
  c_items : int;
  c_value_size : int;
  c_working_set : int;
  c_conns : int;
}

let config ~smoke =
  if smoke then
    {
      c_slab_mib = 16;
      c_buckets = 1 lsl 12;
      c_items = 300;
      c_value_size = 128;
      c_working_set = 500;
      c_conns = 120;
    }
  else
    {
      c_slab_mib = 64;
      c_buckets = 1 lsl 14;
      c_items = 2_000;
      c_value_size = 512;
      c_working_set = 5_000;
      c_conns = 1_500;
    }

(* One measured run: fresh server, prefill, then the zipfian closed-loop
   workload with the tracer counting [Ipi] events. The tracer is left
   disabled with no sinks afterwards, and the global batching toggle is
   restored to its default (on). *)
let run_one ~mode ~workers ~batch ~seed cfg =
  Syscall.set_ipi_batching batch;
  Fun.protect
    ~finally:(fun () -> Syscall.set_ipi_batching true)
    (fun () ->
      let server =
        Server.create ~mode ~workers ~shards:workers ~sync_batch:batch
          ~slab_mib:cfg.c_slab_mib ~buckets:cfg.c_buckets ()
      in
      Server.prefill server ~items:cfg.c_items ~value_size:cfg.c_value_size;
      let ipi_events = ref 0 in
      Mpk_trace.Tracer.add_sink (fun e ->
          match e.Mpk_trace.Event.ev with
          | Mpk_trace.Event.Ipi _ -> incr ipi_events
          | _ -> ());
      Mpk_trace.Tracer.enable ();
      let result =
        Fun.protect
          ~finally:(fun () ->
            Mpk_trace.Tracer.disable ();
            Mpk_trace.Tracer.clear_sinks ();
            Mpk_trace.Tracer.clear ())
          (fun () ->
            Loadgen.run_scale server ~loop:(Loadgen.Closed_loop cfg.c_conns)
              ~value_size:cfg.c_value_size ~working_set:cfg.c_working_set ~seed ())
      in
      (* The concurrent run must leave a consistent cross-layer state:
         the full six-invariant audit for the libmpk modes, plus every
         shard's slab allocator invariant. *)
      let audit =
        match Server.mpk server with
        | None -> []
        | Some mpk ->
            Mpk_check.Audit.run mpk
            |> List.map (fun v -> Format.asprintf "%a" Mpk_check.Audit.pp_violation v)
      in
      let per_core_ipis = Sched.ipis_per_core (Proc.sched (Server.proc server)) in
      (result, !ipi_events, per_core_ipis, audit, Server.slab_invariants server))

(* One open-loop rate point: fresh server, prefill, timed arrival
   process. Connections that would wait longer than the accept deadline
   are dropped, which is what makes the post-knee region visible instead
   of just stretching the makespan as the closed loop does. *)
let run_open_one ~mode ~workers ~rate ~duration_s ~seed cfg =
  let server =
    Server.create ~mode ~workers ~shards:workers ~slab_mib:cfg.c_slab_mib
      ~buckets:cfg.c_buckets ()
  in
  Server.prefill server ~items:cfg.c_items ~value_size:cfg.c_value_size;
  (* Accept deadline scaled to the window: a saturated server must be
     able to shed load within the run, or drops never register. *)
  let result =
    Loadgen.run_scale server ~loop:(Loadgen.Open_loop rate) ~duration_s
      ~max_delay_s:(duration_s /. 10.0) ~value_size:cfg.c_value_size
      ~working_set:cfg.c_working_set ~seed ()
  in
  let audit =
    match Server.mpk server with
    | None -> []
    | Some mpk ->
        Mpk_check.Audit.run mpk
        |> List.map (fun v -> Format.asprintf "%a" Mpk_check.Audit.pp_violation v)
  in
  {
    op_rate = rate;
    op_result = result;
    op_audit_violations = audit;
    op_slabs_ok = Server.slab_invariants server;
  }

let find_knee points =
  match points with
  | [] -> None
  | first :: _ ->
      let baseline = Float.max first.op_result.Loadgen.p99_cycles 1.0 in
      let saturated p =
        let r = p.op_result in
        r.Loadgen.p99_cycles > 2.0 *. baseline
        || float_of_int r.Loadgen.s_dropped_conns
           > 0.01 *. float_of_int (max 1 r.Loadgen.s_offered_conns)
      in
      List.find_opt saturated points |> Option.map (fun p -> p.op_rate)

let run_open ~mode ~workers ~rates ?(smoke = false) ?(seed = 0xC0FEL) () =
  if workers < 1 then invalid_arg "Scale.run_open: workers must be >= 1";
  if rates = [] || List.exists (fun r -> r < 1) rates then
    invalid_arg "Scale.run_open: rates must be a non-empty list of rates >= 1";
  let cfg = config ~smoke in
  (* A short measured window keeps the sweep cheap: offered load is
     [rate * duration], and the knee is a property of the rate, not of
     how long we hold it. *)
  let duration_s = if smoke then 0.02 else 0.1 in
  let points =
    List.sort_uniq compare rates
    |> List.map (fun rate -> run_open_one ~mode ~workers ~rate ~duration_s ~seed cfg)
  in
  { os_cores = workers; os_duration_s = duration_s; os_points = points;
    os_knee = find_knee points }

let publish_metrics ~cores (r : Loadgen.scale_result) per_core_ipis =
  Array.iteri
    (fun i busy ->
      Metrics.set
        (Metrics.gauge
           (Printf.sprintf "scale_core_busy_seconds{cores=\"%d\",core=\"%d\"}" cores i))
        busy)
    r.Loadgen.per_core_busy_s;
  List.iter
    (fun (core, sent, received) ->
      Metrics.set
        (Metrics.gauge (Printf.sprintf "scale_ipis_sent{cores=\"%d\",core=\"%d\"}" cores core))
        (float_of_int sent);
      Metrics.set
        (Metrics.gauge
           (Printf.sprintf "scale_ipis_received{cores=\"%d\",core=\"%d\"}" cores core))
        (float_of_int received))
    per_core_ipis

let run ~mode ~cores ?(open_rates = []) ?(smoke = false) ?(seed = 0xC0FEL) () =
  let cfg = config ~smoke in
  let points =
    List.map
      (fun workers ->
        if workers < 1 then invalid_arg "Scale.run: core counts must be >= 1";
        let batched, eb, per_core_ipis, audit_b, slabs_b =
          run_one ~mode ~workers ~batch:true ~seed cfg
        in
        let per_update, eu, _, audit_u, slabs_u =
          run_one ~mode ~workers ~batch:false ~seed cfg
        in
        publish_metrics ~cores:workers batched per_core_ipis;
        {
          cores = workers;
          batched;
          per_update;
          ipi_events_batched = eb;
          ipi_events_per_update = eu;
          per_core_ipis;
          audit_violations = audit_b @ audit_u;
          slabs_ok = slabs_b && slabs_u;
        })
      cores
  in
  let open_loop =
    match open_rates with
    | [] -> None
    | rates ->
        (* Sweep arrival rates at the widest machine of the closed-loop
           run: the knee of interest is the one batching is supposed to
           push right at max parallelism. *)
        let workers = List.fold_left max 1 cores in
        Some (run_open ~mode ~workers ~rates ~smoke ~seed ())
  in
  { mode; closed_conns = cfg.c_conns; seed; smoke; points; open_loop }

let result_json (r : Loadgen.scale_result) =
  Json.Obj
    [
      ("offered_conns", Json.Int r.Loadgen.s_offered_conns);
      ("handled_conns", Json.Int r.Loadgen.s_handled_conns);
      ("dropped_conns", Json.Int r.Loadgen.s_dropped_conns);
      ("requests", Json.Int r.Loadgen.s_requests);
      ("gets", Json.Int r.Loadgen.s_gets);
      ("sets", Json.Int r.Loadgen.s_sets);
      ("data_bytes", Json.Int r.Loadgen.s_data_bytes);
      ("duration_s", Json.Float r.Loadgen.s_duration_s);
      ("throughput_rps", Json.Float r.Loadgen.s_throughput_rps);
      ("p50_cycles", Json.Float r.Loadgen.p50_cycles);
      ("p95_cycles", Json.Float r.Loadgen.p95_cycles);
      ("p99_cycles", Json.Float r.Loadgen.p99_cycles);
      ("ipis", Json.Int r.Loadgen.ipis);
      ( "per_core_busy_s",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.Float s) r.Loadgen.per_core_busy_s)) );
    ]

let point_json p =
  Json.Obj
    [
      ("cores", Json.Int p.cores);
      ("batched", result_json p.batched);
      ("per_update", result_json p.per_update);
      ("ipi_events_batched", Json.Int p.ipi_events_batched);
      ("ipi_events_per_update", Json.Int p.ipi_events_per_update);
      ( "per_core_ipis",
        Json.List
          (List.map
             (fun (core, sent, received) ->
               Json.Obj
                 [
                   ("core", Json.Int core);
                   ("sent", Json.Int sent);
                   ("received", Json.Int received);
                 ])
             p.per_core_ipis) );
      ( "audit_violations",
        Json.List (List.map (fun m -> Json.String m) p.audit_violations) );
      ("slabs_ok", Json.Bool p.slabs_ok);
    ]

let open_point_json p =
  Json.Obj
    [
      ("rate", Json.Int p.op_rate);
      ("result", result_json p.op_result);
      ( "audit_violations",
        Json.List (List.map (fun m -> Json.String m) p.op_audit_violations) );
      ("slabs_ok", Json.Bool p.op_slabs_ok);
    ]

let open_sweep_json s =
  Json.Obj
    [
      ("cores", Json.Int s.os_cores);
      ("duration_s", Json.Float s.os_duration_s);
      ("points", Json.List (List.map open_point_json s.os_points));
      ("knee_rate", match s.os_knee with Some r -> Json.Int r | None -> Json.Null);
    ]

let to_json r =
  Json.Obj
    ([
       ("bench", Json.String "scale");
       ("mode", Json.String (Server.mode_name r.mode));
       ("closed_conns", Json.Int r.closed_conns);
       ("seed", Json.String (Printf.sprintf "0x%Lx" r.seed));
       ("smoke", Json.Bool r.smoke);
       ("points", Json.List (List.map point_json r.points));
     ]
    @ match r.open_loop with
      | None -> []
      | Some s -> [ ("open_loop", open_sweep_json s) ])

(* Validation shared by `mpkctl scale` and CI: the measured curve must
   have every audited invariant hold, every slab consistent, and the
   batched runs must emit strictly fewer Ipi trace events than the
   per-update reference wherever the reference emitted any. *)
let problems r =
  List.concat_map
    (fun p ->
      let issues = ref [] in
      let add fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
      if p.audit_violations <> [] then
        add "cores=%d: %d auditor invariant violation(s): %s" p.cores
          (List.length p.audit_violations)
          (String.concat "; " p.audit_violations);
      if not p.slabs_ok then add "cores=%d: shard slab invariant failed" p.cores;
      if p.ipi_events_per_update > 0 && p.ipi_events_batched >= p.ipi_events_per_update
      then
        add "cores=%d: batched sync emitted %d Ipi events, per-update %d (expected fewer)"
          p.cores p.ipi_events_batched p.ipi_events_per_update;
      if p.batched.Loadgen.s_requests = 0 then add "cores=%d: no requests completed" p.cores;
      List.rev !issues)
    r.points
  @
  match r.open_loop with
  | None -> []
  | Some s ->
      List.concat_map
        (fun p ->
          let issues = ref [] in
          let add fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
          if p.op_audit_violations <> [] then
            add "open-loop rate=%d: %d auditor invariant violation(s): %s" p.op_rate
              (List.length p.op_audit_violations)
              (String.concat "; " p.op_audit_violations);
          if not p.op_slabs_ok then
            add "open-loop rate=%d: shard slab invariant failed" p.op_rate;
          if p.op_result.Loadgen.s_requests = 0 then
            add "open-loop rate=%d: no requests completed" p.op_rate;
          List.rev !issues)
        s.os_points
