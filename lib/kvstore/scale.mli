(** Multi-core scale-out measurement (ROADMAP item 1): throughput and
    tail latency versus core count, with batched do_pkey_sync IPIs
    measured against the per-update broadcast on the identical workload.

    Each point builds a fresh sharded server ([shards = workers], one
    worker per core), prefills it, and drives the zipfian closed-loop
    workload twice from the same seed: once with IPI batching (and the
    server's batched mprotect pairs), once with the per-update reference.
    [Ipi] trace events are counted through a tracer sink during the
    measured window, the cross-layer auditor runs against the live libmpk
    instance after each run, and per-core busy time and IPI counters are
    published to the metrics registry. *)

type point = {
  cores : int;
  batched : Loadgen.scale_result;
  per_update : Loadgen.scale_result;
  ipi_events_batched : int;
  ipi_events_per_update : int;
  per_core_ipis : (int * int * int) list;  (** core, sent, received (batched run) *)
  audit_violations : string list;
  slabs_ok : bool;
}

type report = {
  mode : Server.mode;
  closed_conns : int;
  open_rate : int option;
  seed : int64;
  smoke : bool;
  points : point list;
}

(** [run ~mode ~cores ()] — one point per entry of [cores] (each entry is
    a worker/shard count). [smoke] shrinks the store and the connection
    count to CI size. Deterministic for a given [seed]. *)
val run :
  mode:Server.mode -> cores:int list -> ?smoke:bool -> ?seed:int64 -> unit -> report

val to_json : report -> Mpk_trace.Json.t

(** Human-readable validation failures: auditor violations, slab
    invariant breaks, a batched run that did not emit strictly fewer
    [Ipi] events than its per-update twin, or an empty run. Empty means
    the report is good. *)
val problems : report -> string list
