(** Multi-core scale-out measurement (ROADMAP item 1): throughput and
    tail latency versus core count, with batched do_pkey_sync IPIs
    measured against the per-update broadcast on the identical workload.

    Each point builds a fresh sharded server ([shards = workers], one
    worker per core), prefills it, and drives the zipfian closed-loop
    workload twice from the same seed: once with IPI batching (and the
    server's batched mprotect pairs), once with the per-update reference.
    [Ipi] trace events are counted through a tracer sink during the
    measured window, the cross-layer auditor runs against the live libmpk
    instance after each run, and per-core busy time and IPI counters are
    published to the metrics registry. *)

type point = {
  cores : int;
  batched : Loadgen.scale_result;
  per_update : Loadgen.scale_result;
  ipi_events_batched : int;
  ipi_events_per_update : int;
  per_core_ipis : (int * int * int) list;  (** core, sent, received (batched run) *)
  audit_violations : string list;
  slabs_ok : bool;
}

(** One arrival rate of the open-loop sweep. *)
type open_point = {
  op_rate : int;  (** offered connections per second *)
  op_result : Loadgen.scale_result;
  op_audit_violations : string list;
  op_slabs_ok : bool;
}

(** Open-loop latency curve at a fixed core count: offered load is
    decoupled from service capacity, so past saturation connections
    drop and tail latency leaves the flat region — the knee. *)
type open_sweep = {
  os_cores : int;
  os_duration_s : float;
  os_points : open_point list;  (** ascending rate *)
  os_knee : int option;
      (** first rate whose p99 exceeds 2x the lowest rate's, or that
          drops > 1% of offered connections; [None] = knee beyond the
          swept range *)
}

type report = {
  mode : Server.mode;
  closed_conns : int;
  seed : int64;
  smoke : bool;
  points : point list;
  open_loop : open_sweep option;
}

(** [run ~mode ~cores ()] — one point per entry of [cores] (each entry is
    a worker/shard count). [smoke] shrinks the store and the connection
    count to CI size. Deterministic for a given [seed]. When
    [open_rates] is non-empty, an open-loop sweep over those arrival
    rates runs at the largest core count and lands in [report.open_loop]. *)
val run :
  mode:Server.mode ->
  cores:int list ->
  ?open_rates:int list ->
  ?smoke:bool ->
  ?seed:int64 ->
  unit ->
  report

(** Standalone open-loop sweep at [workers] cores over [rates]
    (sorted and deduplicated). Raises [Invalid_argument] on an empty or
    non-positive rate list. *)
val run_open :
  mode:Server.mode ->
  workers:int ->
  rates:int list ->
  ?smoke:bool ->
  ?seed:int64 ->
  unit ->
  open_sweep

val to_json : report -> Mpk_trace.Json.t

(** Human-readable validation failures: auditor violations, slab
    invariant breaks, a batched run that did not emit strictly fewer
    [Ipi] events than its per-update twin, or an empty run. Empty means
    the report is good. *)
val problems : report -> string list
