(** Process-wide metrics registry.

    Counters, gauges, and fixed-bucket histograms (built on
    {!Mpk_util.Stats.Histogram}), registered by name with get-or-create
    semantics, exported as Prometheus text exposition or JSON.

    Names may carry a Prometheus-style label suffix, e.g.
    [trace_events_total{kind="wrpkru"}]; the [# HELP]/[# TYPE] header is
    emitted once per base name (the part before ['{']). Histogram names
    must be label-free — the exporter appends its own [le] labels. *)

type counter
type gauge

val counter : ?help:string -> string -> counter
(** Get or create. Raises [Invalid_argument] if [name] is already
    registered with a different metric type. *)

val gauge : ?help:string -> string -> gauge

val histogram :
  ?help:string -> ?lo:float -> ?growth:float -> ?buckets:int -> string ->
  Mpk_util.Stats.Histogram.h
(** Bucket-layout options are only honoured on first registration. *)

val inc : ?by:float -> counter -> unit
val set : gauge -> float -> unit
val observe : Mpk_util.Stats.Histogram.h -> float -> unit

val reset : unit -> unit
(** Drop every registered metric. Handles obtained before the reset are
    detached: updating them still works but they no longer export. *)

val generation : unit -> int
(** Bumped on every {!reset} — callers caching metric handles compare
    generations to notice theirs went stale and re-register. *)

val is_empty : unit -> bool

val registered : unit -> string list
(** Registered names in registration order (export order). *)

val export_prometheus : unit -> string
(** Prometheus text exposition: scalar lines for counters/gauges;
    cumulative [_bucket{le=...}] lines plus [_sum]/[_count] for
    histograms. *)

val export_json : unit -> Json.t
(** Array of metric objects; histograms include bucket arrays and
    p50/p95/p99 (null when empty). *)
