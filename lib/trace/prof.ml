(* Hierarchical cycle attribution.

   Every [Cpu.charge] carries an optional label; while profiling is
   enabled, each charge is recorded as "self" cycles on a node whose
   path is (open span names ++ label). The tree answers "where did this
   run's cycles go" — e.g. mpk_begin/wrpkru vs mprotect/tlb_flush — and
   exports as an indented table or folded stacks for flamegraph tools.

   Exactness contract (checked by `mpkctl profile`): [total] is advanced
   by the same float additions, in the same order, as [Cpu.total_charged],
   both starting from 0.0 at [reset] — so their final values are
   bit-identical, with no FP-reassociation slack. *)

type node = {
  mutable self : float;  (* cycles charged directly at this path *)
  mutable calls : int;  (* span entries, or charge events on leaves *)
  children : (string, node) Hashtbl.t;
  order : string list ref;  (* child insertion order, for stable output *)
}

let fresh () = { self = 0.0; calls = 0; children = Hashtbl.create 8; order = ref [] }

let root = ref (fresh ())
let cursor : node list ref = ref []  (* innermost first; [] = root *)
let enabled = ref false
let grand_total = ref 0.0

let unattributed = "(unattributed)"

let on () = !enabled

let reset () =
  root := fresh ();
  cursor := [];
  grand_total := 0.0

let enable () = enabled := true
let disable () = enabled := false

let current () = match !cursor with n :: _ -> n | [] -> !root

let child n label =
  match Hashtbl.find_opt n.children label with
  | Some c -> c
  | None ->
      let c = fresh () in
      Hashtbl.replace n.children label c;
      n.order := label :: !(n.order);
      c

let enter label =
  if !enabled then begin
    let c = child (current ()) label in
    c.calls <- c.calls + 1;
    cursor := c :: !cursor
  end

let exit_ () =
  if !enabled then
    match !cursor with _ :: tl -> cursor := tl | [] -> ()

let record ?label cycles =
  if !enabled then begin
    grand_total := !grand_total +. cycles;
    let label = match label with Some l -> l | None -> unattributed in
    let n = child (current ()) label in
    n.self <- n.self +. cycles;
    n.calls <- n.calls + 1
  end

let total_recorded () = !grand_total

(* ---------- queries / export ---------- *)

type snapshot = {
  label : string;
  self : float;
  calls : int;
  total : float;  (* self + all descendants *)
  children : snapshot list;
}

let rec snap label (n : node) =
  let children =
    List.rev_map (fun l -> snap l (Hashtbl.find n.children l)) !(n.order)
  in
  (* Largest subtrees first makes the rendered tree scannable. *)
  let children =
    List.stable_sort (fun a b -> Float.compare b.total a.total) children
  in
  let total = List.fold_left (fun acc c -> acc +. c.total) n.self children in
  { label; self = n.self; calls = n.calls; total; children }

let snapshot () = snap "root" !root

let rec sum_self s = List.fold_left (fun acc c -> acc +. sum_self c) s.self s.children

let leaf_sum () = sum_self (snapshot ())

let folded () =
  let buf = Buffer.create 1024 in
  let rec walk path s =
    let path = if s.label = "root" then path else path @ [ s.label ] in
    if s.self > 0.0 && path <> [] then
      Buffer.add_string buf
        (Printf.sprintf "%s %.1f\n" (String.concat ";" path) s.self);
    List.iter (walk path) s.children
  in
  walk [] (snapshot ());
  Buffer.contents buf

let render () =
  let buf = Buffer.create 1024 in
  let s = snapshot () in
  let rec walk depth s =
    Buffer.add_string buf
      (Printf.sprintf "%-44s %14.1f %14.1f %10d\n"
         (String.make (2 * depth) ' ' ^ s.label)
         s.total s.self s.calls);
    List.iter (walk (depth + 1)) s.children
  in
  Buffer.add_string buf
    (Printf.sprintf "%-44s %14s %14s %10s\n" "span/label" "total cy" "self cy" "calls");
  if s.children = [] then Buffer.add_string buf "(no cycles attributed)\n"
  else List.iter (walk 0) s.children;
  Buffer.contents buf

let rec json_of_snapshot s =
  Json.Obj
    [
      "label", Json.String s.label;
      "self_cycles", Json.Float s.self;
      "total_cycles", Json.Float s.total;
      "calls", Json.Int s.calls;
      "children", Json.List (List.map json_of_snapshot s.children);
    ]

(* Inverse of [json_of_snapshot], for reloading committed BENCH_*.json
   profiles so `mpkctl profile diff` / `bench diff` can align a fresh
   tree against them. Strict: a malformed node names itself in the
   error rather than collapsing to a partial tree. *)
let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let num name j =
    match Option.bind (Json.member name j) Json.to_number with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "profile node: missing or non-numeric %S" name)
  in
  let rec node j =
    let* label =
      match Option.bind (Json.member "label" j) Json.to_string_opt with
      | Some l -> Ok l
      | None -> Error "profile node: missing string \"label\""
    in
    let ctx = Result.map_error (fun e -> Printf.sprintf "%s (under %S)" e label) in
    let* self = ctx (num "self_cycles" j) in
    let* total = ctx (num "total_cycles" j) in
    let* calls = ctx (num "calls" j) in
    let* children =
      match Option.bind (Json.member "children" j) Json.to_list with
      | None -> Error (Printf.sprintf "profile node %S: missing children array" label)
      | Some l ->
          List.fold_left
            (fun acc c ->
              let* acc = acc in
              let* c = node c in
              Ok (c :: acc))
            (Ok []) l
          |> Result.map List.rev
    in
    Ok { label; self; calls = int_of_float calls; total; children }
  in
  node j
