(* Chrome/Perfetto trace_event JSON writer.

   Spans become "B"/"E" duration events, everything else an "i" instant,
   on one track (tid) per core; floating faultinj events (core = -1) get
   their own track. Perfetto requires per-track timestamps to be
   non-decreasing, but experiment drivers recreate machines (core ids
   reused, cycle clocks restarting at zero), so each track's ts is
   clamped to a running maximum before emission. *)

let faultinj_tid = 1000

let tid_of core = if core >= 0 then core else faultinj_tid

let thread_name_meta tid name =
  Json.Obj
    [
      "name", Json.String "thread_name";
      "ph", Json.String "M";
      "pid", Json.Int 0;
      "tid", Json.Int tid;
      "args", Json.Obj [ "name", Json.String name ];
    ]

let event_json ~ts (e : Event.t) =
  let ph, name =
    match e.ev with
    | Event.Span_begin { name } -> "B", name
    | Event.Span_end { name } -> "E", name
    | ev -> "i", Event.kind ev
  in
  let args =
    Event.args e.ev
    |> List.map (fun (k, v) -> k, Json.String v)
    |> fun base ->
    ("task", Json.Int e.task) :: ("span", Json.Int e.span)
    :: ("seq", Json.Int e.seq) :: base
  in
  let scope = if ph = "i" then [ "s", Json.String "t" ] else [] in
  Json.Obj
    ([
       "name", Json.String name;
       "ph", Json.String ph;
       "pid", Json.Int 0;
       "tid", Json.Int (tid_of e.core);
       "ts", Json.Float ts;
     ]
    @ scope
    @ [ "args", Json.Obj args ])

let perfetto events =
  let events = List.sort (fun (a : Event.t) b -> compare a.seq b.seq) events in
  let floor_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let clamp (e : Event.t) =
    let tid = tid_of e.core in
    let lo = Option.value ~default:0.0 (Hashtbl.find_opt floor_ts tid) in
    let ts = Float.max lo e.ts in
    Hashtbl.replace floor_ts tid ts;
    ts
  in
  let body = List.map (fun e -> event_json ~ts:(clamp e) e) events in
  let tids =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> tid_of e.core) events)
  in
  let meta =
    Json.Obj
      [
        "name", Json.String "process_name";
        "ph", Json.String "M";
        "pid", Json.Int 0;
        "args", Json.Obj [ "name", Json.String "mpk-sim" ];
      ]
    :: List.map
         (fun tid ->
           thread_name_meta tid
             (if tid = faultinj_tid then "faultinj" else Printf.sprintf "core %d" tid))
         tids
  in
  Json.Obj
    [
      "traceEvents", Json.List (meta @ body);
      "displayTimeUnit", Json.String "ns";
      "otherData", Json.Obj [ "clock", Json.String "simulated cycles" ];
    ]

let perfetto_string ?(indent = 0) events = Json.to_string ~indent (perfetto events)
