(** Typed trace events for every simulator layer.

    The taxonomy (DESIGN.md §10):
    - {b hw}: [Wrpkru]/[Rdpkru] register traffic, TLB miss/fill/flush,
      PTE updates (one summary event per range op), page faults;
    - {b kernel}: syscall enter/exit (with errno on failure), lazy
      [do_pkey_sync] deferral vs execution, reschedule/shootdown IPIs,
      context switches, signal delivery;
    - {b core (libmpk)}: key-cache hit/miss/evict/full/pin/unpin, page
      group ops, protected-heap alloc/free;
    - {b faultinj}: injection-point firings;
    - {b tracer-internal}: span begin/end markers emitted by
      {!Tracer.with_span}.

    Payloads are plain ints/strings on purpose: this module depends on
    nothing above [mpk_util], so hw, kernel, core, and faultinj can all
    emit without dependency cycles. *)

type ev =
  | Wrpkru of { pkru : int }
  | Rdpkru of { pkru : int }
  | Tlb_miss of { vpn : int }
  | Tlb_fill of { vpn : int; pkey : int }
  | Tlb_flush of { pages : int; all : bool }
  | Pte_update of { pages : int; present : int }
  | Page_fault of { addr : int; cause : string }
  | Syscall_enter of { name : string }
  | Syscall_exit of { name : string; errno : string option }
  | Pkey_sync_deferred of { target : int; pkey : int }
  | Pkey_sync_executed of { target : int; pkey : int }
  | Ipi of { kind : string; target_core : int }
  | Context_switch of { task : int; onto : bool }
  | Signal_delivered of { task : int; signo : int; code : string }
  | Lock_acquire of { cls : string; excl : bool; actor : int }
  | Lock_release of { cls : string; excl : bool; actor : int }
  | Lock_contended of { cls : string; excl : bool; actor : int }
  | Cache_hit of { vkey : int; pkey : int }
  | Cache_miss of { vkey : int }
  | Cache_evict of { vkey : int; victim : int; pkey : int }
  | Cache_full of { vkey : int }
  | Cache_pin of { vkey : int }
  | Cache_unpin of { vkey : int }
  | Group_op of { op : string; vkey : int }
  | Heap_alloc of { vkey : int; size : int; addr : int }
  | Heap_free of { vkey : int; addr : int }
  | Fault_point_fired of { point : string }
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Marker of { name : string }

(** Envelope: every emitted event is stamped with emission order, the
    emitting core's simulated cycle clock, the task resident on that
    core, and the innermost open span. *)
type t = {
  seq : int;  (** global emission order, unique across cores *)
  ts : float;  (** simulated cycle time on [core] at emission *)
  core : int;  (** [-1] when there is no core context (faultinj) *)
  task : int;  (** task id on [core], [-1] if none/unknown *)
  span : int;  (** innermost open span id; [0] means top level *)
  ev : ev;
}

val kind : ev -> string
(** Stable snake_case tag, used for metrics names and exporter labels. *)

val args : ev -> (string * string) list
(** Payload fields as key/value strings, for exporters. *)

val to_line : t -> string
(** One-line human-readable rendering (black-box dumps, [mpkctl trace]). *)
