(** Hierarchical cycle attribution.

    While enabled, every labelled [Cpu.charge] accrues "self" cycles on
    the tree node addressed by the currently-open span names plus the
    charge label (e.g. [mpk_begin/wrpkru]); unlabelled charges land on
    an [(unattributed)] child so nothing is silently dropped.

    Exactness contract: {!total_recorded} performs the same float
    additions in the same order as [Cpu.total_charged] (both reset to
    0.0 together), so after any run with profiling enabled throughout,
    the two are bit-identical — `mpkctl profile` checks this with exact
    float equality, not a tolerance. *)

val unattributed : string
(** The label unlabelled charges land on: ["(unattributed)"]. *)

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Clear the tree, the span cursor, and the running total. *)

val enter : string -> unit
(** Open a span (pushes a tree node). No-op when disabled — callers
    should keep enable state fixed for the duration of a span, or the
    cursor can unbalance. {!Tracer.with_span} guarantees this. *)

val exit_ : unit -> unit

val record : ?label:string -> float -> unit
(** Attribute cycles at the current position. Called by [Cpu.charge]. *)

val total_recorded : unit -> float

(** Immutable view of the tree; children sorted by descending total. *)
type snapshot = {
  label : string;
  self : float;
  calls : int;
  total : float;  (** self + all descendants *)
  children : snapshot list;
}

val snapshot : unit -> snapshot
(** Root snapshot (label ["root"], self 0). *)

val leaf_sum : unit -> float
(** Sum of every node's self cycles — equals {!total_recorded} up to FP
    reassociation (the fold order differs). *)

val folded : unit -> string
(** Folded-stack export, one ["a;b;c 123.4"] line per node with
    positive self cycles — feed to [flamegraph.pl] or speedscope. *)

val render : unit -> string
(** Indented text table: total / self / calls per node. *)

val json_of_snapshot : snapshot -> Json.t

val snapshot_of_json : Json.t -> (snapshot, string) result
(** Inverse of {!json_of_snapshot} — reload a committed profile tree for
    differential comparison. Strict: errors name the offending node. *)
