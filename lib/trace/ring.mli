(** Bounded ring buffer keeping the newest [capacity] elements.

    The tracer's per-core event buffers and the stress harness's
    "black box" are built on this: pushes past capacity silently drop
    the {e oldest} element, never the newest. *)

type 'a t

val create : int -> 'a t
(** Raises [Invalid_argument] when capacity is not positive. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently retained ([<= capacity]). *)

val pushed : 'a t -> int
(** Total elements ever pushed, including dropped ones. *)

val push : 'a t -> 'a -> unit
val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. *)

val iter : 'a t -> ('a -> unit) -> unit

val recent : 'a t -> int -> 'a list
(** [recent t n]: the newest [min n (length t)] elements, in
    chronological (oldest-of-those-first) order. *)
