(* Typed trace events spanning every simulator layer.

   One flat variant rather than per-layer types: the tracer stores a
   single heterogeneous stream per core, and exporters dispatch on the
   constructor. Payloads carry only plain ints/strings so this module
   stays at the bottom of the dependency graph (nothing above mpk_util),
   letting hw, kernel, core, and faultinj all emit without cycles. *)

type ev =
  (* hw *)
  | Wrpkru of { pkru : int }
  | Rdpkru of { pkru : int }
  | Tlb_miss of { vpn : int }
  | Tlb_fill of { vpn : int; pkey : int }
  | Tlb_flush of { pages : int; all : bool }
  | Pte_update of { pages : int; present : int }
  | Page_fault of { addr : int; cause : string }
  (* kernel *)
  | Syscall_enter of { name : string }
  | Syscall_exit of { name : string; errno : string option }
  | Pkey_sync_deferred of { target : int; pkey : int }
  | Pkey_sync_executed of { target : int; pkey : int }
  | Ipi of { kind : string; target_core : int }
  | Context_switch of { task : int; onto : bool }
  | Signal_delivered of { task : int; signo : int; code : string }
  | Lock_acquire of { cls : string; excl : bool; actor : int }
  | Lock_release of { cls : string; excl : bool; actor : int }
  | Lock_contended of { cls : string; excl : bool; actor : int }
  (* libmpk core *)
  | Cache_hit of { vkey : int; pkey : int }
  | Cache_miss of { vkey : int }
  | Cache_evict of { vkey : int; victim : int; pkey : int }
  | Cache_full of { vkey : int }
  | Cache_pin of { vkey : int }
  | Cache_unpin of { vkey : int }
  | Group_op of { op : string; vkey : int }
  | Heap_alloc of { vkey : int; size : int; addr : int }
  | Heap_free of { vkey : int; addr : int }
  (* faultinj *)
  | Fault_point_fired of { point : string }
  (* tracer-internal *)
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Marker of { name : string }

type t = {
  seq : int;  (* global emission order, unique *)
  ts : float;  (* simulated cycle time on [core] *)
  core : int;  (* -1 when no core context (faultinj firings) *)
  task : int;  (* task id running on [core] at emission, -1 if none *)
  span : int;  (* innermost open span id, 0 = top level *)
  ev : ev;
}

let kind = function
  | Wrpkru _ -> "wrpkru"
  | Rdpkru _ -> "rdpkru"
  | Tlb_miss _ -> "tlb_miss"
  | Tlb_fill _ -> "tlb_fill"
  | Tlb_flush _ -> "tlb_flush"
  | Pte_update _ -> "pte_update"
  | Page_fault _ -> "page_fault"
  | Syscall_enter _ -> "syscall_enter"
  | Syscall_exit _ -> "syscall_exit"
  | Pkey_sync_deferred _ -> "pkey_sync_deferred"
  | Pkey_sync_executed _ -> "pkey_sync_executed"
  | Ipi _ -> "ipi"
  | Context_switch _ -> "context_switch"
  | Signal_delivered _ -> "signal_delivered"
  | Lock_acquire _ -> "lock_acquire"
  | Lock_release _ -> "lock_release"
  | Lock_contended _ -> "lock_contended"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Cache_evict _ -> "cache_evict"
  | Cache_full _ -> "cache_full"
  | Cache_pin _ -> "cache_pin"
  | Cache_unpin _ -> "cache_unpin"
  | Group_op _ -> "group_op"
  | Heap_alloc _ -> "heap_alloc"
  | Heap_free _ -> "heap_free"
  | Fault_point_fired _ -> "fault_point_fired"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Marker _ -> "marker"

let args = function
  | Wrpkru { pkru } | Rdpkru { pkru } -> [ "pkru", Printf.sprintf "0x%08x" pkru ]
  | Tlb_miss { vpn } -> [ "vpn", string_of_int vpn ]
  | Tlb_fill { vpn; pkey } -> [ "vpn", string_of_int vpn; "pkey", string_of_int pkey ]
  | Tlb_flush { pages; all } ->
      [ "pages", string_of_int pages; "all", string_of_bool all ]
  | Pte_update { pages; present } ->
      [ "pages", string_of_int pages; "present", string_of_int present ]
  | Page_fault { addr; cause } -> [ "addr", Printf.sprintf "0x%x" addr; "cause", cause ]
  | Syscall_enter { name } -> [ "name", name ]
  | Syscall_exit { name; errno } ->
      [ "name", name; "errno", (match errno with None -> "0" | Some e -> e) ]
  | Pkey_sync_deferred { target; pkey } | Pkey_sync_executed { target; pkey } ->
      [ "target_task", string_of_int target; "pkey", string_of_int pkey ]
  | Ipi { kind; target_core } ->
      [ "kind", kind; "target_core", string_of_int target_core ]
  | Context_switch { task; onto } ->
      [ "task", string_of_int task; "dir", (if onto then "in" else "out") ]
  | Signal_delivered { task; signo; code } ->
      [ "task", string_of_int task; "signo", string_of_int signo; "code", code ]
  | Lock_acquire { cls; excl; actor }
  | Lock_release { cls; excl; actor }
  | Lock_contended { cls; excl; actor } ->
      (* No lock-instance id here: ids are a process-global counter, and
         trace bytes must be deterministic per seed (coredump dumps). *)
      [
        "cls", cls;
        "mode", (if excl then "excl" else "shared");
        "actor", string_of_int actor;
      ]
  | Cache_hit { vkey; pkey } -> [ "vkey", string_of_int vkey; "pkey", string_of_int pkey ]
  | Cache_miss { vkey } | Cache_full { vkey } | Cache_pin { vkey } | Cache_unpin { vkey }
    ->
      [ "vkey", string_of_int vkey ]
  | Cache_evict { vkey; victim; pkey } ->
      [
        "vkey", string_of_int vkey;
        "victim_vkey", string_of_int victim;
        "pkey", string_of_int pkey;
      ]
  | Group_op { op; vkey } -> [ "op", op; "vkey", string_of_int vkey ]
  | Heap_alloc { vkey; size; addr } ->
      [
        "vkey", string_of_int vkey;
        "size", string_of_int size;
        "addr", Printf.sprintf "0x%x" addr;
      ]
  | Heap_free { vkey; addr } ->
      [ "vkey", string_of_int vkey; "addr", Printf.sprintf "0x%x" addr ]
  | Fault_point_fired { point } -> [ "point", point ]
  | Span_begin { name } | Span_end { name } | Marker { name } -> [ "name", name ]

let to_line t =
  let payload =
    args t.ev
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v)
    |> String.concat " "
  in
  Printf.sprintf "#%-6d %12.1f cy  core=%-2d task=%-3d span=%-3d %-18s %s" t.seq t.ts
    t.core t.task t.span (kind t.ev) payload
