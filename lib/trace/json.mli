(** Minimal JSON tree, printer, and strict parser.

    No third-party JSON library is available in the build image, so the
    exporters carry their own: the printer backs the Perfetto and
    [BENCH_*.json] writers, and the strict parser exists so round-trip
    tests (and `mpkctl`'s export validation) can reject malformed output
    rather than trusting the printer. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize. [indent = 0] (default) is compact single-line output;
    positive values pretty-print. Raises [Invalid_argument] on NaN or
    infinite floats — JSON has no spelling for them, and emitting [null]
    silently would corrupt metric exports. *)

exception Parse_error of int * string
(** Byte offset and description. *)

val parse_exn : string -> t
(** Strict RFC 8259 parsing: rejects trailing garbage, raw control
    characters in strings, lone surrogates, leading zeros, and bare
    values like [nan]. Numbers without fraction/exponent parse as [Int]
    (falling back to [Float] on overflow); all others as [Float].
    Raises {!Parse_error}. *)

val parse : string -> (t, string) result

(** {2 Base64 byte blobs}

    JSON has no bytes type, so binary payloads (core-dump memory
    sections, ciphertexts) travel as base64 strings — RFC 4648, standard
    alphabet, padded. Decoding is strict: length must be a multiple of
    4, ['='] only as final padding, and non-canonical trailing bits are
    rejected, so [decode (encode b) = Ok b] and nothing else decodes. *)

val base64_encode : bytes -> string

val base64_decode : string -> (bytes, string) result

val bytes_to_json : bytes -> t
(** [String (base64_encode b)]. *)

val bytes_of_json : t -> (bytes, string) result
(** Decodes a [String] node; errors on other nodes or malformed base64. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else or a missing key. *)

val to_list : t -> t list option
val to_number : t -> float option
(** [Int] and [Float] both read as numbers. *)

val to_string_opt : t -> string option
