(** Chrome/Perfetto [trace_event] JSON export.

    Load the output in [https://ui.perfetto.dev] (or
    [chrome://tracing]). One track (tid) per core under pid 0, plus a
    dedicated track for core-less fault-injection events; spans are
    "B"/"E" duration events, other events thread-scoped instants.
    Timestamps are simulated cycles written into the [ts] field
    (microseconds to the viewer — the scale is what matters), clamped
    per track to be non-decreasing, since experiment drivers recreate
    machines whose cycle clocks restart at zero. *)

val perfetto : Event.t list -> Json.t

val perfetto_string : ?indent:int -> Event.t list -> string
