(* Bounded ring buffer that keeps the newest [capacity] pushes.

   Backing store is an option array rather than a dummy-element array so
   the structure is usable with any element type without requiring a
   witness value at creation. *)

type 'a t = {
  slots : 'a option array;
  mutable pushed : int;  (* total pushes ever; write cursor = pushed mod capacity *)
}

let create capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; pushed = 0 }

let capacity t = Array.length t.slots

let length t = Stdlib.min t.pushed (capacity t)

let pushed t = t.pushed

let push t x =
  t.slots.(t.pushed mod capacity t) <- Some x;
  t.pushed <- t.pushed + 1

let clear t =
  Array.fill t.slots 0 (capacity t) None;
  t.pushed <- 0

(* Oldest retained element first. *)
let to_list t =
  let cap = capacity t in
  let len = length t in
  let start = t.pushed - len in
  List.init len (fun i ->
      match t.slots.((start + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let iter t f = List.iter f (to_list t)

(* Newest [n] elements, oldest of those first. *)
let recent t n =
  let len = length t in
  let n = Stdlib.min (Stdlib.max n 0) len in
  let all = to_list t in
  let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
  drop (len - n) all
