(* Minimal JSON tree, printer, and strict parser.

   The container ships no JSON library, and the exporters (Perfetto
   trace_event, BENCH_*.json, metrics) need both directions: a printer
   that never emits malformed output, and a parser strict enough that
   the round-trip tests actually catch printer bugs instead of papering
   over them. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then invalid_arg "Json: non-finite float"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* %.17g round-trips any finite double exactly. *)
    Printf.sprintf "%.17g" f

let rec print_to buf ~indent ~level v =
  let pad n = if indent > 0 then Buffer.add_string buf (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          print_to buf ~indent ~level:(level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape_to buf k;
          Buffer.add_char buf ':';
          if indent > 0 then Buffer.add_char buf ' ';
          print_to buf ~indent ~level:(level + 1) item)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = 0) v =
  let buf = Buffer.create 4096 in
  print_to buf ~indent ~level:0 v;
  Buffer.contents buf

(* ---------- strict parsing ---------- *)

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail !pos (Printf.sprintf "expected %C, got %C" c c')
    | None -> fail !pos (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      v
    end
    else fail !pos (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail (!pos - 4) "invalid \\u escape"
  in
  let utf8_add buf cp =
    (* Encode a code point as UTF-8; surrogate pairs are combined by the
       caller, lone surrogates already rejected. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail !pos "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail !pos "truncated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let cp = hex4 () in
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                (* high surrogate: require the low half *)
                if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo < 0xDC00 || lo > 0xDFFF then fail !pos "invalid low surrogate"
                  else
                    utf8_add buf
                      (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
                end
                else fail !pos "lone high surrogate"
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then fail !pos "lone low surrogate"
              else utf8_add buf cp
          | c -> fail (!pos - 1) (Printf.sprintf "invalid escape \\%C" c));
          loop ())
      | c when Char.code c < 0x20 -> fail (!pos - 1) "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_digit c = c >= '0' && c <= '9' in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some c when is_digit c ->
        while !pos < n && is_digit s.[!pos] do
          advance ()
        done
    | _ -> fail !pos "invalid number");
    let is_int = ref true in
    if peek () = Some '.' then begin
      is_int := false;
      advance ();
      if not (!pos < n && is_digit s.[!pos]) then fail !pos "digit required after '.'";
      while !pos < n && is_digit s.[!pos] do
        advance ()
      done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_int := false;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (!pos < n && is_digit s.[!pos]) then fail !pos "digit required in exponent";
        while !pos < n && is_digit s.[!pos] do
          advance ()
        done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_int then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail !pos "expected ',' or '}' in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected ',' or ']' in array"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage after JSON value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "at offset %d: %s" pos msg)

(* ---------- base64 byte blobs ---------- *)

(* JSON has no bytes type, so byte blobs (core-dump sections) travel as
   base64 strings. RFC 4648, standard alphabet, strict decoding: the
   round-trip tests rely on the decoder rejecting everything the encoder
   cannot have produced, including non-canonical trailing bits. *)

let b64_alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let base64_encode b =
  let n = Bytes.length b in
  let out = Buffer.create (4 * ((n + 2) / 3)) in
  let byte i = Char.code (Bytes.get b i) in
  let rec go i =
    if i + 3 <= n then begin
      let v = (byte i lsl 16) lor (byte (i + 1) lsl 8) lor byte (i + 2) in
      Buffer.add_char out b64_alphabet.[(v lsr 18) land 0x3f];
      Buffer.add_char out b64_alphabet.[(v lsr 12) land 0x3f];
      Buffer.add_char out b64_alphabet.[(v lsr 6) land 0x3f];
      Buffer.add_char out b64_alphabet.[v land 0x3f];
      go (i + 3)
    end
    else if i + 2 = n then begin
      let v = (byte i lsl 16) lor (byte (i + 1) lsl 8) in
      Buffer.add_char out b64_alphabet.[(v lsr 18) land 0x3f];
      Buffer.add_char out b64_alphabet.[(v lsr 12) land 0x3f];
      Buffer.add_char out b64_alphabet.[(v lsr 6) land 0x3f];
      Buffer.add_char out '='
    end
    else if i + 1 = n then begin
      let v = byte i lsl 16 in
      Buffer.add_char out b64_alphabet.[(v lsr 18) land 0x3f];
      Buffer.add_char out b64_alphabet.[(v lsr 12) land 0x3f];
      Buffer.add_string out "=="
    end
  in
  go 0;
  Buffer.contents out

let b64_value c =
  match c with
  | 'A' .. 'Z' -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let base64_decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error (Printf.sprintf "base64 length %d not a multiple of 4" n)
  else if n = 0 then Ok (Bytes.create 0)
  else begin
    let pad =
      if s.[n - 1] <> '=' then 0
      else if s.[n - 2] <> '=' then 1
      else 2
    in
    let out = Buffer.create (3 * n / 4) in
    let err = ref None in
    (try
       let i = ref 0 in
       while !i < n do
         let quad j =
           let c = s.[!i + j] in
           if c = '=' then
             (* '=' is only legal as final padding. *)
             if !i + j >= n - pad then -1
             else begin
               err := Some (Printf.sprintf "stray '=' at offset %d" (!i + j));
               raise Exit
             end
           else
             match b64_value c with
             | Some v -> v
             | None ->
                 err :=
                   Some (Printf.sprintf "invalid base64 character %C at offset %d" c (!i + j));
                 raise Exit
         in
         let a = quad 0 and b = quad 1 and c = quad 2 and d = quad 3 in
         if a < 0 || b < 0 then begin
           err := Some "malformed base64 padding";
           raise Exit
         end;
         let last = !i + 4 >= n in
         (match c, d with
         | -1, -1 ->
             if not last then begin
               err := Some "malformed base64 padding";
               raise Exit
             end;
             (* canonical encoding: unused trailing bits must be zero *)
             if (b land 0x0f) <> 0 then begin
               err := Some "non-canonical base64 (nonzero trailing bits)";
               raise Exit
             end;
             Buffer.add_char out (Char.chr ((a lsl 2) lor (b lsr 4)))
         | c', -1 ->
             if not last then begin
               err := Some "malformed base64 padding";
               raise Exit
             end;
             if (c' land 0x03) <> 0 then begin
               err := Some "non-canonical base64 (nonzero trailing bits)";
               raise Exit
             end;
             Buffer.add_char out (Char.chr ((a lsl 2) lor (b lsr 4)));
             Buffer.add_char out (Char.chr (((b land 0x0f) lsl 4) lor (c' lsr 2)))
         | -1, _ ->
             err := Some "malformed base64 padding";
             raise Exit
         | c', d' ->
             Buffer.add_char out (Char.chr ((a lsl 2) lor (b lsr 4)));
             Buffer.add_char out (Char.chr (((b land 0x0f) lsl 4) lor (c' lsr 2)));
             Buffer.add_char out (Char.chr (((c' land 0x03) lsl 6) lor d'));
             ignore last);
         i := !i + 4
       done
     with Exit -> ());
    match !err with
    | Some e -> Error e
    | None -> Ok (Buffer.to_bytes out)
  end

let bytes_to_json b = String (base64_encode b)

let bytes_of_json = function
  | String s -> base64_decode s
  | _ -> Error "expected a base64 string"

(* ---------- accessors ---------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_number = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
