(* Per-core ring-buffer event tracer.

   Runtime-off by default: [emit] and [with_span] check one mutable
   bool and return immediately when tracing/profiling are both off, so
   instrumented hot paths (TLB lookups, WRPKRU) cost a branch. When on,
   events go to a bounded ring per core (newest events win), to the
   metrics registry (one counter per event kind), and to any registered
   sinks. *)

let enabled = ref false
let default_capacity = ref 8192

let rings : (int, Event.t Ring.t) Hashtbl.t = Hashtbl.create 8
let ring_order : int list ref = ref []

let seq = ref 0
let last = ref 0.0  (* max cycle timestamp seen on any core *)

(* Which task is resident on each core; maintained by the scheduler via
   [set_task_on_core] regardless of enable state, so enabling tracing
   mid-run still stamps correct task ids. *)
let task_on_core : (int, int) Hashtbl.t = Hashtbl.create 8

type sink = Event.t -> unit

let sinks : sink list ref = ref []

let span_counter = ref 0
let span_stack : int list ref = ref []

let on () = !enabled

let enable ?capacity () =
  (match capacity with
  | Some c ->
      if c < 1 then invalid_arg "Tracer.enable: capacity must be positive";
      default_capacity := c
  | None -> ());
  enabled := true

let disable () = enabled := false

let clear () =
  Hashtbl.reset rings;
  ring_order := [];
  seq := 0;
  last := 0.0;
  span_counter := 0;
  span_stack := []

let add_sink s = sinks := s :: !sinks
let clear_sinks () = sinks := []

let set_task_on_core ~core ~task = Hashtbl.replace task_on_core core task

let ring_for core =
  match Hashtbl.find_opt rings core with
  | Some r -> r
  | None ->
      let r = Ring.create !default_capacity in
      Hashtbl.replace rings core r;
      ring_order := core :: !ring_order;
      r

(* One counter per event kind, e.g. trace_events_total{kind="wrpkru"};
   memoized so the enabled-path cost is one hash lookup. The memo is
   invalidated when [Metrics.reset] bumps the registry generation, or
   cached handles would keep counting into detached refs. *)
let kind_counters : (string, Metrics.counter) Hashtbl.t = Hashtbl.create 32
let kind_counters_gen = ref (Metrics.generation ())

let counter_for kind =
  let gen = Metrics.generation () in
  if gen <> !kind_counters_gen then begin
    Hashtbl.reset kind_counters;
    kind_counters_gen := gen
  end;
  match Hashtbl.find_opt kind_counters kind with
  | Some c -> c
  | None ->
      let c =
        Metrics.counter
          ~help:"Trace events emitted, by event kind"
          (Printf.sprintf "trace_events_total{kind=%S}" kind)
      in
      Hashtbl.replace kind_counters kind c;
      c

let emit ~core ~ts ev =
  if !enabled then begin
    let task =
      match Hashtbl.find_opt task_on_core core with Some t -> t | None -> -1
    in
    let span = match !span_stack with s :: _ -> s | [] -> 0 in
    let e = { Event.seq = !seq; ts; core; task; span; ev } in
    incr seq;
    if ts > !last then last := ts;
    Ring.push (ring_for core) e;
    Metrics.inc (counter_for (Event.kind ev));
    List.iter (fun s -> s e) !sinks
  end

(* For emitters with no core context (fault injection): stamp with the
   latest cycle time observed anywhere. *)
let emit_floating ev = emit ~core:(-1) ~ts:!last ev

let with_span ~core ~clock name f =
  let tracing = !enabled in
  let profiling = Prof.on () in
  if not (tracing || profiling) then f ()
  else begin
    incr span_counter;
    span_stack := !span_counter :: !span_stack;
    if tracing then emit ~core ~ts:(clock ()) (Event.Span_begin { name });
    if profiling then Prof.enter name;
    Fun.protect
      ~finally:(fun () ->
        if profiling then Prof.exit_ ();
        if tracing then emit ~core ~ts:(clock ()) (Event.Span_end { name });
        match !span_stack with _ :: tl -> span_stack := tl | [] -> ())
      f
  end

(* ---------- queries ---------- *)

let emitted () = !seq
let last_ts () = !last

let events () =
  List.concat_map
    (fun core ->
      match Hashtbl.find_opt rings core with
      | Some r -> Ring.to_list r
      | None -> [])
    !ring_order
  |> List.sort (fun (a : Event.t) b -> compare a.seq b.seq)

let recent n =
  let all = events () in
  let len = List.length all in
  let rec drop k l =
    if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl
  in
  drop (len - n) all

let retained () = List.length (events ())

let cores () = List.sort compare !ring_order
