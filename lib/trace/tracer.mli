(** Per-core ring-buffer event tracer.

    Compile-in, runtime-off: instrumentation calls {!emit} / {!with_span}
    unconditionally, and both bail on one mutable-bool check when
    tracing (and profiling) are disabled — the disabled cost on hot
    paths is a branch, verified by the overhead-freedom test. When
    enabled, each event is stamped (seq, cycle ts, core, resident task,
    innermost span id), pushed to that core's bounded ring (oldest
    events are dropped first), counted in the metrics registry per
    event kind, and fanned out to registered sinks. *)

val on : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turn tracing on. [capacity] (default 8192) sets the per-core ring
    size used for rings created from now on; raises [Invalid_argument]
    when not positive. *)

val disable : unit -> unit

val clear : unit -> unit
(** Drop all buffered events and reset seq/span state. Does not touch
    enable state, sinks, or the core→task registry. *)

type sink = Event.t -> unit

val add_sink : sink -> unit
(** Sinks run synchronously on every emitted event while tracing is
    enabled (after ring insertion). *)

val clear_sinks : unit -> unit

val set_task_on_core : core:int -> task:int -> unit
(** Scheduler hook: records which task is resident on [core] so events
    can be task-stamped. Maintained even while tracing is disabled, so
    enabling mid-run yields correct attribution. *)

val emit : core:int -> ts:float -> Event.ev -> unit

val emit_floating : Event.ev -> unit
(** Emit without core context (fault-injection firings): [core = -1],
    timestamped with {!last_ts}. *)

val with_span : core:int -> clock:(unit -> float) -> string -> (unit -> 'a) -> 'a
(** [with_span ~core ~clock name f] wraps [f] in a span: allocates a
    span id, emits [Span_begin]/[Span_end] stamped via [clock] (the
    core's cycle counter, read at entry and exit), and opens a
    {!Prof} attribution scope when profiling is enabled. Exception-safe.
    Keep enable states fixed for the duration of a span. *)

val emitted : unit -> int
(** Total events emitted since {!clear}, including ones already
    dropped from rings. *)

val retained : unit -> int
val last_ts : unit -> float

val events : unit -> Event.t list
(** All retained events across cores, in emission (seq) order. *)

val recent : int -> Event.t list
(** Newest [n] retained events, oldest-first — the "black box". *)

val cores : unit -> int list
(** Core ids (including -1 for floating emitters) that have emitted. *)
