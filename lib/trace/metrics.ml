(* Process-wide metrics registry: counters, gauges, and fixed-bucket
   histograms (Util.Stats.Histogram), with Prometheus-style text export
   and a JSON export.

   Names may carry a Prometheus label suffix, e.g.
   [trace_events_total{kind="wrpkru"}]; HELP/TYPE lines are emitted once
   per base name (the part before '{'). Histogram names must be
   label-free because the exporter appends its own [le] labels. *)

module Stats = Mpk_util.Stats

type counter = float ref
type gauge = float ref

type value = Scalar of float ref | Hist of Stats.Histogram.h
type kind = Counter | Gauge | Histogram

type metric = { name : string; help : string; kind : kind; value : value }

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* Registration order, for stable export output. *)
let order : string list ref = ref []

let base_name name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let find_or_register ~name ~help ~kind make =
  match Hashtbl.find_opt registry name with
  | Some m ->
      if m.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name
             (kind_to_string m.kind));
      m.value
  | None ->
      let value = make () in
      Hashtbl.replace registry name { name; help; kind; value };
      order := name :: !order;
      value

let counter ?(help = "") name =
  match find_or_register ~name ~help ~kind:Counter (fun () -> Scalar (ref 0.0)) with
  | Scalar r -> r
  | Hist _ -> assert false

let gauge ?(help = "") name =
  match find_or_register ~name ~help ~kind:Gauge (fun () -> Scalar (ref 0.0)) with
  | Scalar r -> r
  | Hist _ -> assert false

let histogram ?(help = "") ?lo ?growth ?buckets name =
  if String.contains name '{' then
    invalid_arg "Metrics.histogram: labels not supported on histogram names";
  match
    find_or_register ~name ~help ~kind:Histogram (fun () ->
        Hist (Stats.Histogram.create ?lo ?growth ?buckets ()))
  with
  | Hist h -> h
  | Scalar _ -> assert false

let inc ?(by = 1.0) c = c := !c +. by
let set g v = g := v
let observe = Stats.Histogram.add

(* Bumped on every [reset] so callers caching metric handles (the
   tracer's per-kind counter memo) can notice their handles went stale. *)
let generation_counter = ref 0

let generation () = !generation_counter

let reset () =
  Hashtbl.reset registry;
  order := [];
  incr generation_counter

let is_empty () = Hashtbl.length registry = 0

let registered () = List.rev !order

(* ---------- Prometheus text exposition ---------- *)

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let export_prometheus () =
  let buf = Buffer.create 4096 in
  let headers_done = Hashtbl.create 16 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt registry name with
      | None -> ()
      | Some m ->
          let base = base_name m.name in
          if not (Hashtbl.mem headers_done base) then begin
            Hashtbl.replace headers_done base ();
            if m.help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" base m.help);
            Buffer.add_string buf
              (Printf.sprintf "# TYPE %s %s\n" base (kind_to_string m.kind))
          end;
          (match m.value with
          | Scalar r -> Buffer.add_string buf (Printf.sprintf "%s %s\n" m.name (prom_float !r))
          | Hist h ->
              let cum = ref 0 in
              Array.iter
                (fun (ub, c) ->
                  cum := !cum + c;
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m.name (prom_float ub) !cum))
                (Stats.Histogram.buckets h);
              Buffer.add_string buf
                (Printf.sprintf "%s_sum %s\n" m.name (prom_float (Stats.Histogram.total h)));
              Buffer.add_string buf
                (Printf.sprintf "%s_count %d\n" m.name (Stats.Histogram.count h))))
    (registered ());
  Buffer.contents buf

(* ---------- JSON export ---------- *)

let export_json () =
  let metric_json m =
    let common = [ "name", Json.String m.name; "type", Json.String (kind_to_string m.kind) ] in
    let help = if m.help = "" then [] else [ "help", Json.String m.help ] in
    let payload =
      match m.value with
      | Scalar r -> [ "value", Json.Float !r ]
      | Hist h ->
          let n = Stats.Histogram.count h in
          let buckets =
            Array.to_list (Stats.Histogram.buckets h)
            |> List.map (fun (ub, c) ->
                   Json.Obj
                     [
                       ("le", if ub = infinity then Json.String "+Inf" else Json.Float ub);
                       "count", Json.Int c;
                     ])
          in
          [
            "count", Json.Int n;
            "sum", Json.Float (Stats.Histogram.total h);
            ( "p50",
              if n = 0 then Json.Null else Json.Float (Stats.Histogram.p50 h) );
            ( "p95",
              if n = 0 then Json.Null else Json.Float (Stats.Histogram.p95 h) );
            ( "p99",
              if n = 0 then Json.Null else Json.Float (Stats.Histogram.p99 h) );
            "buckets", Json.List buckets;
          ]
    in
    Json.Obj (common @ help @ payload)
  in
  Json.List
    (List.filter_map
       (fun name -> Option.map metric_json (Hashtbl.find_opt registry name))
       (registered ()))
