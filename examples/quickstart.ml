(* Quickstart: the two usage models from the paper's Figure 5.

     dune exec examples/quickstart.exe

   1. Domain-based isolation: mpk_begin/mpk_end unlock a page group for
      the calling thread only; touching it outside the domain faults.
   2. Quick permission change: mpk_mprotect as a fast, synchronized
      mprotect substitute. *)

open Mpk_hw
open Mpk_kernel

let group_1 = 100
let group_2 = 101

let () =
  (* A simulated 2-core machine running one process with one thread. *)
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let mmu = Proc.mmu proc in
  let core = Task.core task in

  (* mpk_init: take all hardware keys; default eviction rate (100%). *)
  let mpk = Libmpk.init ~vkeys:[ group_1; group_2 ] ~evict_rate:(-1.0) proc task in

  (* --- domain-based isolation ------------------------------------- *)
  print_endline "== domain-based isolation (mpk_begin / mpk_end) ==";
  let addr =
    Libmpk.mpk_mmap mpk task ~vkey:group_1 ~len:0x1000 ~prot:Perm.rw
  in
  Printf.printf "mpk_mmap  -> page group %d at 0x%x (pkey permission: --)\n" group_1 addr;

  Libmpk.mpk_begin mpk task ~vkey:group_1 ~prot:Perm.rw;
  Mmu.write_bytes mmu core ~addr (Bytes.of_string "secret data");
  Printf.printf "mpk_begin -> wrote %S inside the domain\n" "secret data";
  Printf.printf "             read back: %S\n"
    (Bytes.to_string (Mmu.read_bytes mmu core ~addr ~len:11));
  Libmpk.mpk_end mpk task ~vkey:group_1;

  (* The paper's Figure 5 comment: printf(addr) now SEGFAULTs. *)
  (match Mmu.read_byte mmu core ~addr with
  | exception Signal.Killed si ->
      Printf.printf "mpk_end   -> read after end: %s (as the paper promises)\n"
        (Signal.to_string si)
  | _ -> failwith "BUG: group readable outside the domain");

  (* --- quick permission change ------------------------------------ *)
  print_endline "\n== quick permission change (mpk_mprotect) ==";
  let addr2 = Libmpk.mpk_mmap mpk task ~vkey:group_2 ~len:0x1000 ~prot:Perm.rw in
  Libmpk.mpk_mprotect mpk task ~vkey:group_2 ~prot:Perm.rw;
  Mmu.write_byte mmu core ~addr:addr2 '\xc3';  (* a one-byte "program" *)
  let _, cycles =
    Cpu.measure core (fun () -> Libmpk.mpk_mprotect mpk task ~vkey:group_2 ~prot:Perm.r)
  in
  Printf.printf "mpk_mprotect(rw -> r-) on a cache hit: %.1f simulated cycles\n" cycles;
  let _, mcycles =
    Cpu.measure core (fun () ->
        Syscall.mprotect proc task ~addr:addr2 ~len:0x1000 ~prot:Perm.rw)
  in
  Printf.printf "plain mprotect on the same page:       %.1f simulated cycles\n" mcycles;
  Printf.printf "speedup: %.1fx\n" (mcycles /. cycles);

  (match Mmu.write_byte mmu core ~addr:addr2 'x' with
  | exception Signal.Killed _ -> print_endline "write after mpk_mprotect(r--): faults, as it should"
  | _ -> print_endline "NOTE: page writable again after plain mprotect(rw)");

  print_endline "\nquickstart done."
