(* The Memcached case study (paper §5.3/Fig 14): a 4-thread key-value
   store whose slabs and hash table live in protected memory.

     dune exec examples/kvstore_demo.exe

   Shows (1) all protection modes serving the same workload, (2) the
   attacker's view of slab memory per mode, and (3) why mprotect-based
   protection collapses once the store holds real data. *)

open Mpk_hw
open Mpk_kernel
open Mpk_kvstore

let modes = [ Server.Baseline; Server.Domain; Server.Sync; Server.Mprotect_sys ]

let () =
  print_endline "== correctness: every mode serves the same workload ==";
  List.iter
    (fun mode ->
      let srv = Server.create ~mode ~workers:2 ~slab_mib:8 ~buckets:256 () in
      ignore (Server.set srv ~worker:0 ~key:"user:42" ~value:(Bytes.of_string "alice") : (unit, _) result);
      ignore (Server.set srv ~worker:1 ~key:"session" ~value:(Bytes.of_string "tok-9f1") : (unit, _) result);
      let v = Option.map Bytes.to_string (Server.get srv ~worker:1 ~key:"user:42") in
      Printf.printf "  %-13s get(user:42) = %s\n" (Server.mode_name mode)
        (Option.value ~default:"<missing>" v))
    modes;

  print_endline "\n== security: attacker thread reads slab memory directly ==";
  List.iter
    (fun mode ->
      let srv = Server.create ~mode ~workers:2 ~slab_mib:8 ~buckets:256 () in
      ignore (Server.set srv ~worker:0 ~key:"card" ~value:(Bytes.of_string "4111-1111") : (unit, _) result);
      let attacker = Server.attacker_task srv in
      match
        Mmu.read_bytes (Proc.mmu (Server.proc srv)) (Task.core attacker)
          ~addr:(Server.slab_base srv) ~len:64
      with
      | _ -> Printf.printf "  %-13s slab memory READABLE by a compromised thread\n"
               (Server.mode_name mode)
      | exception Signal.Killed si ->
          Printf.printf "  %-13s blocked (%s)\n" (Server.mode_name mode)
            (Signal.to_string si))
    modes;

  print_endline "\n== performance: per-request cost with 256 MiB resident ==";
  List.iter
    (fun mode ->
      let srv = Server.create ~mode ~workers:1 ~slab_mib:256 ~buckets:256 () in
      ignore (Server.set srv ~worker:0 ~key:"k" ~value:(Bytes.make 512 'v') : (unit, _) result);
      Server.populate_slab srv ~mib:256;
      let core = Task.core (Server.workers srv).(0) in
      let before = Cpu.cycles core in
      for _ = 1 to 20 do
        ignore (Server.get srv ~worker:0 ~key:"k")
      done;
      let per_req = (Cpu.cycles core -. before) /. 20.0 in
      Printf.printf "  %-13s %10.0f cycles/request (%.1f us at 2.4 GHz)\n"
        (Server.mode_name mode) per_req
        (per_req /. 2400.0))
    modes;
  print_endline "\nkvstore demo done."
