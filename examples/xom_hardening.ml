(* XOM-Switch-style execute-only hardening (paper §8): load "plugin"
   modules, seal them execute-only with libmpk's reserved key, and show
   that code still runs while no thread — not even the loader — can read
   it back (defeating JIT-ROP-style code disclosure).

     dune exec examples/xom_hardening.exe *)

open Mpk_hw
open Mpk_kernel
open Mpk_jit

let () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let xom = Xom.create mpk in

  (* load three modules, as a plugin host would *)
  let mods =
    List.map
      (fun (name, v) ->
        let code =
          Bytecode.compile { Bytecode.name; body = [ Bytecode.Push v; Bytecode.Ret ] }
        in
        Xom.load xom task ~name code)
      [ "auth.so", 101; "codec.so", 202; "net.so", 303 ]
  in
  Printf.printf "loaded %d modules\n" (List.length mods);

  (* seal them all: they share libmpk's single reserved execute-only key *)
  List.iter (fun m -> Xom.seal xom task m) mods;
  Printf.printf "sealed; reserved execute-only key present: %b\n"
    (Libmpk.xonly_key mpk <> None);

  List.iter
    (fun m ->
      let v = Xom.execute xom task m in
      let readable =
        match Mmu.read_byte (Proc.mmu proc) (Task.core task) ~addr:m.Xom.base with
        | _ -> true
        | exception Signal.Killed _ -> false
      in
      Printf.printf "  %-10s executes -> %d; readable: %b\n" m.Xom.name v readable)
    mods;

  print_endline "\naddress space (note pkey tags on the sealed modules):";
  print_string (Mm.show_maps (Proc.mm proc));

  Format.printf "\nlibmpk stats: %a\n" Libmpk.pp_stats (Libmpk.stats mpk);
  print_endline "xom_hardening demo done."
